//! Implementations of the CLI subcommands.

use std::error::Error;
use std::fs;
use std::time::Instant;

type Result<T> = std::result::Result<T, Box<dyn Error>>;

/// Reads a raw little-endian `f64` file.
pub fn read_f64(path: &str) -> Result<Vec<f64>> {
    let bytes = fs::read(path)?;
    if bytes.len() % 8 != 0 {
        return Err(format!("{path}: length {} is not a multiple of 8", bytes.len()).into());
    }
    Ok(bytes.chunks_exact(8).map(|c| f64::from_le_bytes(c.try_into().unwrap())).collect())
}

/// Reads a raw little-endian `f32` file.
pub fn read_f32(path: &str) -> Result<Vec<f32>> {
    let bytes = fs::read(path)?;
    if bytes.len() % 4 != 0 {
        return Err(format!("{path}: length {} is not a multiple of 4", bytes.len()).into());
    }
    Ok(bytes.chunks_exact(4).map(|c| f32::from_le_bytes(c.try_into().unwrap())).collect())
}

fn write_f64(path: &str, data: &[f64]) -> Result<()> {
    let bytes: Vec<u8> = data.iter().flat_map(|v| v.to_le_bytes()).collect();
    fs::write(path, bytes)?;
    Ok(())
}

/// `alp compress <in> <out> [--f32] [--parity K]` — `--parity K` appends one
/// XOR parity frame per `K` row-group frames, making any single damaged
/// row-group per group reconstructible by `alp scrub` / the salvage readers.
pub fn compress(input: &str, output: &str, f32_mode: bool, parity: Option<usize>) -> Result<()> {
    fn encode<F: alp::AlpFloat>(data: &[F], parity: Option<usize>) -> Result<(Vec<u8>, f64)> {
        let compressed = alp::Compressor::new().compress(data);
        let bytes = match parity {
            Some(group_size) => {
                alp::format::to_bytes_with_parity(&compressed, alp::ParityConfig { group_size })?
            }
            None => alp::format::to_bytes(&compressed),
        };
        Ok((bytes, compressed.bits_per_value()))
    }
    let t0 = Instant::now();
    let (bytes, values, bpv) = if f32_mode {
        let data = read_f32(input)?;
        let (bytes, bpv) = encode(&data, parity)?;
        (bytes, data.len(), bpv)
    } else {
        let data = read_f64(input)?;
        let (bytes, bpv) = encode(&data, parity)?;
        (bytes, data.len(), bpv)
    };
    fs::write(output, &bytes)?;
    let raw_bits = if f32_mode { 32.0 } else { 64.0 };
    let protection = match parity {
        Some(k) => format!(", parity 1/{k}"),
        None => String::new(),
    };
    println!(
        "{values} values -> {} bytes  ({bpv:.2} bits/value, {:.1}x, {:.0} ms{protection})",
        bytes.len(),
        raw_bits / bpv,
        t0.elapsed().as_secs_f64() * 1e3
    );
    Ok(())
}

/// `alp compress <in> <out> --stream [--threads N] [--pipeline-depth D]
/// [--parity K]`
///
/// Writes the incremental `"ALPT"` stream layout through the pipelined
/// ingest path: row-group N compresses on a worker pool while row-group N+1
/// fills. The bytes are identical to the serial stream writer at every
/// thread count and depth; `--threads 1` runs fully inline. `--parity K`
/// interleaves one XOR parity frame per `K` row-group frames (computed on
/// the commit path, so the byte-identity guarantee holds with parity too).
pub fn compress_stream(
    input: &str,
    output: &str,
    f32_mode: bool,
    threads: usize,
    depth: Option<usize>,
    parity: Option<usize>,
) -> Result<()> {
    use alp_core::ingest::{resolve_pipeline_depth, PipelineConfig, PipelinedColumnWriter};
    use std::io::BufWriter;

    fn run<F: alp::AlpFloat>(
        data: &[F],
        output: &str,
        config: PipelineConfig,
        parity: Option<usize>,
        t0: Instant,
        raw_bits: f64,
    ) -> Result<()> {
        let sink = BufWriter::new(fs::File::create(output)?);
        let mut writer = match parity {
            Some(group_size) => PipelinedColumnWriter::<F, _>::with_parity(
                sink,
                config,
                alp::ParityConfig { group_size },
            )?,
            None => PipelinedColumnWriter::<F, _>::new(sink, config),
        };
        // Chunked pushes, as a real source would deliver them.
        for chunk in data.chunks(64 * 1024) {
            writer.push(chunk)?;
        }
        let summary = writer.finish()?;
        let secs = t0.elapsed().as_secs_f64();
        let raw_mb = summary.values as f64 * raw_bits / 8.0 / 1e6;
        println!(
            "{} values -> {} bytes streamed in {} row-groups  \
             ({:.2} bits/value, {:.0} ms, {:.0} MB/s, threads={}, depth={})",
            summary.values,
            summary.total_bytes,
            summary.rowgroups,
            summary.payload_bytes as f64 * 8.0 / summary.values.max(1) as f64,
            secs * 1e3,
            raw_mb / secs.max(1e-9),
            config.threads,
            config.depth,
        );
        Ok(())
    }

    let config = PipelineConfig { threads, depth: resolve_pipeline_depth(depth), panic_at: None };
    let t0 = Instant::now();
    if f32_mode {
        run::<f32>(&read_f32(input)?, output, config, parity, t0, 32.0)
    } else {
        run::<f64>(&read_f64(input)?, output, config, parity, t0, 64.0)
    }
}

/// Drains an `"ALPT"`/`"ALPS"` stream strictly; on a corruption error,
/// retries through the salvage-with-repair reader and accepts the result
/// only when parity reconstructed *everything* — decompress never silently
/// drops rows. Returns the values plus a human-readable provenance note.
fn drain_stream<F: alp::AlpFloat>(bytes: &[u8]) -> Result<(Vec<F>, String)> {
    use alp::stream::ColumnReader;
    let strict = (|| -> std::result::Result<(Vec<F>, bool), alp::stream::StreamError> {
        let mut reader = ColumnReader::<F, _>::new(bytes)?;
        let mut data = Vec::new();
        while let Some(values) = reader.next_rowgroup()? {
            data.extend(values);
        }
        Ok((data, reader.is_committed()))
    })();
    match strict {
        Ok((data, committed)) => {
            let committed = if committed { "committed" } else { "UNCOMMITTED" };
            Ok((data, format!("{committed} stream")))
        }
        Err(strict_err) => {
            // Repair-on-read: the salvage reader reconstructs any single
            // damaged frame per parity group, checksum-verified.
            let mut reader = ColumnReader::<F, _>::new(bytes)?;
            let mut data = Vec::new();
            while let Some(values) = reader.next_rowgroup_salvaged()? {
                data.extend(values);
            }
            if !reader.lost_rowgroups().is_empty() || reader.repaired_rowgroups().is_empty() {
                return Err(strict_err.into());
            }
            let committed = if reader.is_committed() { "committed" } else { "UNCOMMITTED" };
            Ok((
                data,
                format!(
                    "{committed} stream, repaired row-groups {:?} from parity",
                    reader.repaired_rowgroups()
                ),
            ))
        }
    }
}

/// Drains an `"ALPT"`/`"ALPS"` stream into raw little-endian floats.
fn decompress_stream(bytes: &[u8], output: &str) -> Result<()> {
    let bits = *bytes.get(4).ok_or("file too short")?;
    match bits {
        64 => {
            let (data, note) = drain_stream::<f64>(bytes)?;
            write_f64(output, &data)?;
            println!("{} values ({note}) -> {output}", data.len());
        }
        32 => {
            let (data, note) = drain_stream::<f32>(bytes)?;
            let raw: Vec<u8> = data.iter().flat_map(|v| v.to_le_bytes()).collect();
            fs::write(output, raw)?;
            println!("{} values (f32, {note}) -> {output}", data.len());
        }
        other => return Err(format!("unsupported float width {other}").into()),
    }
    Ok(())
}

/// Strict column read with a repair-on-read fallback: when the strict parse
/// fails, a salvage pass may still reconstruct every row-group from parity
/// (or re-find alignment past a corrupted length prefix). The fallback is
/// accepted only when *no* row-group stayed lost and the value count matches
/// the header — anything less re-raises the strict error.
fn read_column_with_repair<F: alp::AlpFloat>(
    bytes: &[u8],
) -> Result<(alp::Compressed<F>, Vec<usize>)> {
    match alp::format::from_bytes::<F>(bytes) {
        Ok(c) => Ok((c, Vec::new())),
        Err(strict_err) => match alp::format::from_bytes_salvage::<F>(bytes) {
            Ok(s)
                if s.lost_rowgroups.is_empty()
                    && s.column.len == s.expected_len
                    && s.total_rowgroups > 0 =>
            {
                Ok((s.column, s.repaired_rowgroups))
            }
            _ => Err(strict_err.into()),
        },
    }
}

/// `alp decompress <in> <out>` — with repair-on-read: a damaged but
/// parity-protected file whose every row-group is reconstructible
/// decompresses byte-identically, with a note naming the repaired
/// row-groups.
pub fn decompress(input: &str, output: &str) -> Result<()> {
    let bytes = fs::read(input)?;
    // Streams (`"ALPT"` / legacy `"ALPS"`) and columns share the
    // width-at-byte-4 convention; the magic picks the reader.
    if bytes.len() >= 4
        && (&bytes[..4] == alp::stream::STREAM_MAGIC || &bytes[..4] == alp::stream::STREAM_MAGIC_V1)
    {
        return decompress_stream(&bytes, output);
    }
    // Peek at the width byte (after the 4-byte magic).
    let bits = *bytes.get(4).ok_or("file too short")?;
    match bits {
        64 => {
            let (compressed, repaired) = read_column_with_repair::<f64>(&bytes)?;
            let data = compressed.decompress();
            write_f64(output, &data)?;
            let note = repair_note(&repaired);
            println!("{} values{note} -> {output}", data.len());
        }
        32 => {
            let (compressed, repaired) = read_column_with_repair::<f32>(&bytes)?;
            let data = compressed.decompress();
            let raw: Vec<u8> = data.iter().flat_map(|v| v.to_le_bytes()).collect();
            fs::write(output, raw)?;
            let note = repair_note(&repaired);
            println!("{} values (f32){note} -> {output}", data.len());
        }
        other => return Err(format!("unsupported float width {other}").into()),
    }
    Ok(())
}

fn repair_note(repaired: &[usize]) -> String {
    if repaired.is_empty() {
        String::new()
    } else {
        format!(" (repaired row-groups {repaired:?} from parity)")
    }
}

/// `alp inspect <in>`
pub fn inspect(input: &str) -> Result<()> {
    let bytes = fs::read(input)?;
    let bits = *bytes.get(4).ok_or("file too short")?;
    if bits == 32 {
        let c = alp::format::from_bytes::<f32>(&bytes)?;
        print_structure(&c.rowgroups, c.len, 32, bytes.len());
    } else {
        let c = alp::format::from_bytes::<f64>(&bytes)?;
        print_structure(&c.rowgroups, c.len, 64, bytes.len());
    }
    Ok(())
}

fn print_structure(rowgroups: &[alp::RowGroup], len: usize, bits: u32, file_bytes: usize) {
    println!(
        "ALP column: {len} values of f{bits}, {} row-groups, {file_bytes} bytes",
        rowgroups.len()
    );
    println!("{:<6} {:<8} {:>8} {:>10} {:>12}", "rg", "scheme", "vectors", "values", "exceptions");
    for (i, rg) in rowgroups.iter().enumerate() {
        let (scheme, exceptions) = match rg {
            alp::RowGroup::Alp(g) => {
                ("ALP", g.vectors.iter().map(|v| v.exception_count()).sum::<usize>())
            }
            alp::RowGroup::Rd(_, vs) => {
                ("ALP_rd", vs.iter().map(|v| v.exception_count()).sum::<usize>())
            }
        };
        println!("{i:<6} {scheme:<8} {:>8} {:>10} {exceptions:>12}", rg.vector_count(), rg.len());
    }
}

/// `alp verify` exit code: the column is clean.
pub const VERIFY_EXIT_CLEAN: u8 = 0;

/// `alp verify` exit code: damage was found, but a salvage pass recovers
/// *every* row-group (parity reconstruction and/or resync) — the data is
/// fully intact despite the strict-read failure.
pub const VERIFY_EXIT_REPAIRED: u8 = 2;

/// `alp verify` exit code: the column is damaged but a salvage pass recovers
/// part of it.
pub const VERIFY_EXIT_SALVAGEABLE: u8 = 3;

/// `alp verify` exit code: nothing is recoverable (damaged header, or no
/// row-group survives).
pub const VERIFY_EXIT_UNREADABLE: u8 = 4;

/// `alp verify <in.alp> [--threads N]` — integrity-check a stored column
/// without writing anything: validates the header, every row-group checksum
/// (`ALP2`), and the declared value count, then reports what a salvage pass
/// could recover if the strict read fails. The proving decode and the
/// salvage pass both run on `threads` morsel-claiming workers.
///
/// Returns the process exit code so scripts can triage archives:
/// [`VERIFY_EXIT_CLEAN`] (0), [`VERIFY_EXIT_REPAIRED`] (2, damage found but
/// fully repairable via parity), [`VERIFY_EXIT_SALVAGEABLE`] (3), or
/// [`VERIFY_EXIT_UNREADABLE`] (4). `Err` is reserved for operational
/// failures (unreadable file, unsupported width) and exits 1.
pub fn verify_column(input: &str, threads: usize) -> Result<u8> {
    let bytes = fs::read(input)?;
    let bits = *bytes.get(4).ok_or("file too short")?;
    match bits {
        64 => verify_typed::<f64>(input, &bytes, threads),
        32 => verify_typed::<f32>(input, &bytes, threads),
        other => Err(format!("unsupported float width {other}").into()),
    }
}

fn verify_typed<F: alp::AlpFloat>(input: &str, bytes: &[u8], threads: usize) -> Result<u8> {
    let layout = if bytes.starts_with(alp::format::MAGIC) {
        "ALP2 (per-row-group checksums)"
    } else if bytes.starts_with(alp::format::MAGIC_V1) {
        "ALP1 (legacy, no checksums)"
    } else {
        "unrecognized"
    };
    match alp::format::from_bytes::<F>(bytes) {
        Ok(col) => {
            // A column that parses strictly must also decode; do so to prove
            // the payload is usable, not just well-framed.
            let values = col.decompress_parallel(threads);
            println!(
                "{input}: OK — {layout}, {} values of f{}, {} row-groups",
                values.len(),
                F::BITS,
                col.rowgroups.len()
            );
            Ok(VERIFY_EXIT_CLEAN)
        }
        Err(e) => {
            println!("{input}: CORRUPT — {layout}: {e}");
            match alp::format::from_bytes_salvage_parallel::<F>(bytes, threads) {
                Ok(s) => {
                    for rg in &s.repaired_rowgroups {
                        println!("  row-group {rg}: repaired from parity (checksum verified)");
                    }
                    if s.lost_rowgroups.is_empty()
                        && s.column.len == s.expected_len
                        && s.total_rowgroups > 0
                    {
                        println!(
                            "  fully repaired: all {} values intact ({} of {} row-groups \
                             reconstructed)",
                            s.column.len,
                            s.repaired_rowgroups.len(),
                            s.total_rowgroups
                        );
                        Ok(VERIFY_EXIT_REPAIRED)
                    } else if s.column.len > 0 {
                        println!(
                            "  salvageable: {} of {} values ({} of {} row-groups; lost {:?})",
                            s.column.len,
                            s.expected_len,
                            s.total_rowgroups - s.lost_rowgroups.len(),
                            s.total_rowgroups,
                            s.lost_rowgroups
                        );
                        Ok(VERIFY_EXIT_SALVAGEABLE)
                    } else {
                        println!("  salvageable: nothing (no row-group survives)");
                        Ok(VERIFY_EXIT_UNREADABLE)
                    }
                }
                Err(_) => {
                    println!("  salvageable: nothing (header damaged)");
                    Ok(VERIFY_EXIT_UNREADABLE)
                }
            }
        }
    }
}

/// `alp scrub <in> [--threads N] [--rewrite]` — walk a stored column or
/// stream, verify every row-group checksum, reconstruct damaged row-groups
/// from parity, and report a per-row-group verdict. Report-only by default;
/// `--rewrite` atomically replaces a fully-repaired *column* file with its
/// repaired re-encoding (write to a temp file, then rename), preserving the
/// original parity group size.
///
/// Exit codes mirror `alp verify`: [`VERIFY_EXIT_CLEAN`] (0, no damage),
/// [`VERIFY_EXIT_REPAIRED`] (2, damage found and fully repaired),
/// [`VERIFY_EXIT_SALVAGEABLE`] (3, unrecoverable loss remains), or
/// [`VERIFY_EXIT_UNREADABLE`] (4). `Err` exits 1.
pub fn scrub(input: &str, threads: usize, rewrite: bool) -> Result<u8> {
    let bytes = fs::read(input)?;
    if bytes.len() >= 4
        && (&bytes[..4] == alp::stream::STREAM_MAGIC || &bytes[..4] == alp::stream::STREAM_MAGIC_V1)
    {
        if rewrite {
            return Err("--rewrite supports column files; re-ingest to rewrite a stream".into());
        }
        let bits = *bytes.get(4).ok_or("file too short")?;
        return match bits {
            64 => scrub_stream_typed::<f64>(input, &bytes),
            32 => scrub_stream_typed::<f32>(input, &bytes),
            other => Err(format!("unsupported float width {other}").into()),
        };
    }
    let bits = *bytes.get(4).ok_or("file too short")?;
    match bits {
        64 => scrub_column::<f64>(input, &bytes, threads, rewrite),
        32 => scrub_column::<f32>(input, &bytes, threads, rewrite),
        other => Err(format!("unsupported float width {other}").into()),
    }
}

fn scrub_column<F: alp::AlpFloat>(
    input: &str,
    bytes: &[u8],
    threads: usize,
    rewrite: bool,
) -> Result<u8> {
    if alp::format::from_bytes::<F>(bytes).is_ok() {
        println!("{input}: clean — nothing to scrub");
        return Ok(VERIFY_EXIT_CLEAN);
    }
    let s = match alp::format::from_bytes_salvage_parallel::<F>(bytes, threads) {
        Ok(s) => s,
        Err(e) => {
            println!("{input}: unreadable — {e}");
            return Ok(VERIFY_EXIT_UNREADABLE);
        }
    };
    for rg in &s.repaired_rowgroups {
        println!("  row-group {rg}: repaired from parity (checksum verified)");
    }
    for rg in &s.lost_rowgroups {
        println!("  row-group {rg}: LOST (unrecoverable)");
    }
    if !s.lost_rowgroups.is_empty() {
        println!(
            "{input}: salvageable with loss — {} of {} values recoverable",
            s.column.len, s.expected_len
        );
        return Ok(VERIFY_EXIT_SALVAGEABLE);
    }
    if s.column.len != s.expected_len || s.total_rowgroups == 0 {
        println!("{input}: unreadable — no row-group survives");
        return Ok(VERIFY_EXIT_UNREADABLE);
    }
    println!(
        "{input}: fully repaired — {} row-groups reconstructed from parity, all {} values intact",
        s.repaired_rowgroups.len(),
        s.column.len
    );
    if rewrite {
        // Re-encode with the same protection the file carried; the repaired
        // row-groups are byte-identical to what the writer emitted, so the
        // rewritten file matches the pristine original.
        let repaired_bytes = match alp::format::parity_group_size(bytes) {
            Some(group_size) => {
                alp::format::to_bytes_with_parity(&s.column, alp::ParityConfig { group_size })?
            }
            None => alp::format::to_bytes(&s.column),
        };
        let tmp = format!("{input}.scrub-tmp");
        fs::write(&tmp, &repaired_bytes)?;
        fs::rename(&tmp, input)?;
        println!("  rewrote {input} ({} bytes, damage cleared)", repaired_bytes.len());
    }
    Ok(VERIFY_EXIT_REPAIRED)
}

fn scrub_stream_typed<F: alp::AlpFloat>(input: &str, bytes: &[u8]) -> Result<u8> {
    use alp::stream::ColumnReader;
    let mut reader = ColumnReader::<F, _>::new(bytes)?;
    let mut values = 0usize;
    while let Some(v) = reader.next_rowgroup_salvaged()? {
        values += v.len();
    }
    let committed = if reader.is_committed() { "committed" } else { "UNCOMMITTED" };
    for rg in reader.repaired_rowgroups() {
        println!("  row-group {rg}: repaired from parity (checksum verified)");
    }
    for rg in reader.lost_rowgroups() {
        println!("  row-group {rg}: LOST (unrecoverable)");
    }
    if !reader.lost_rowgroups().is_empty() {
        println!(
            "{input}: salvageable with loss — {values} values recoverable ({committed} stream)"
        );
        return Ok(if values > 0 { VERIFY_EXIT_SALVAGEABLE } else { VERIFY_EXIT_UNREADABLE });
    }
    if reader.repaired_rowgroups().is_empty() {
        println!("{input}: clean — {values} values, nothing to scrub ({committed} stream)");
        return Ok(VERIFY_EXIT_CLEAN);
    }
    println!(
        "{input}: fully repaired — {} row-groups reconstructed from parity, all {values} values \
         intact ({committed} stream)",
        reader.repaired_rowgroups().len()
    );
    Ok(VERIFY_EXIT_REPAIRED)
}

/// `alp stats <in> [--f32]`
pub fn stats(input: &str, f32_mode: bool) -> Result<()> {
    let data: Vec<f64> = if f32_mode {
        read_f32(input)?.into_iter().map(|v| v as f64).collect()
    } else {
        read_f64(input)?
    };
    if data.is_empty() {
        return Err("empty input".into());
    }
    let m = alp::analysis::dataset_metrics(&data);
    println!("values                 : {}", data.len());
    println!(
        "decimal precision      : max {} min {} avg {:.1}",
        m.precision.max, m.precision.min, m.precision.mean
    );
    println!("per-vector prec stddev : {:.2}", m.precision.std_dev);
    println!("non-unique per vector  : {:.1}%", m.non_unique_fraction * 100.0);
    println!("value mean / std       : {:.4} / {:.4}", m.magnitude.mean, m.magnitude.std_dev);
    println!("IEEE exponent mean/std : {:.1} / {:.1}", m.ieee_exponent_mean, m.ieee_exponent_std);
    println!("P_enc per-value        : {:.1}%", m.penc_per_value * 100.0);
    println!(
        "P_enc best exponent    : e={} ({:.1}%)",
        m.penc_best_exponent,
        m.penc_per_dataset * 100.0
    );
    println!("P_enc per-vector       : {:.1}%", m.penc_per_vector * 100.0);
    println!(
        "XOR leading/trailing 0 : {:.1} / {:.1} bits",
        m.xor_leading_zeros, m.xor_trailing_zeros
    );
    Ok(())
}

/// `alp gen <dataset> <n> <out>`
pub fn generate(dataset: &str, n: &str, output: &str) -> Result<()> {
    let n: usize = n.parse().map_err(|_| format!("bad count {n:?}"))?;
    if !datagen::DATASETS.iter().any(|d| d.name == dataset) {
        return Err(format!("unknown dataset {dataset:?} (try `alp datasets`)").into());
    }
    let data = datagen::generate(dataset, n, 42);
    write_f64(output, &data)?;
    println!("{dataset}: {n} values -> {output}");
    Ok(())
}

/// `alp datasets`
pub fn list_datasets() -> Result<()> {
    println!("{:<14} {:<6} generator", "name", "kind");
    for d in &datagen::DATASETS {
        let kind = if d.time_series { "TS" } else { "non-TS" };
        println!("{:<14} {:<6} {:?}", d.name, kind, d.spec);
    }
    Ok(())
}

/// `alp shootout <in> [--threads N]` — every registered codec, one loop.
/// Timed compression and decompression run through the morsel scheduler
/// (`par_compress`/`par_decompress`) at the requested thread count; ratio-only
/// schemes report bits/value with dashes for the timing columns.
pub fn shootout(input: &str, threads: usize) -> Result<()> {
    let data = read_f64(input)?;
    if data.is_empty() {
        return Err("empty input".into());
    }
    let chunk = alp_core::par::DEFAULT_CHUNK_VALUES;
    let mb = data.len() as f64 * 8.0 / 1e6;
    println!("threads: {threads}, chunk: {chunk} values");
    println!("{:<10} {:>11} {:>12} {:>12}", "scheme", "bits/value", "comp MB/s", "dec MB/s");

    let mut scratch = alp_core::Scratch::new();
    for codec in alp_core::Registry::all() {
        let bpv = codec.verified_compressed_bits(&data, &mut scratch)? as f64 / data.len() as f64;
        if codec.caps().ratio_only {
            println!("{:<10} {bpv:>11.2} {:>12} {:>12}", codec.name(), "-", "-");
            continue;
        }
        let t0 = Instant::now();
        let blocks = codec.par_compress(&data, chunk, threads)?;
        let c = t0.elapsed().as_secs_f64();
        let t0 = Instant::now();
        let back = codec.par_decompress(&blocks, threads)?;
        let d = t0.elapsed().as_secs_f64();
        verify(&data, &back, codec.name())?;
        println!("{:<10} {bpv:>11.2} {:>12.0} {:>12.0}", codec.name(), mb / c, mb / d);
    }
    Ok(())
}

/// `alp query <in.f64> <lo> <hi> [--threads N] [--deadline-ms M]
/// [--no-fused]` — a predicated sum served through the query service:
/// per-query deadline, quarantine-and-continue. A one-shot CLI query never
/// re-reads a page, so the cache is built with `max_entries: 0` and every
/// page is a predicted bypass: all pages are scanned with the fused
/// compressed-domain kernels unless `--no-fused` forces the materializing
/// path (the results are bit-identical either way). A nonzero
/// `ALP_FAULT_SEED` poisons a deterministic subset of pages so the degraded
/// path can be exercised from the shell.
pub fn query(
    input: &str,
    lo: &str,
    hi: &str,
    threads: usize,
    deadline_ms: Option<u64>,
    no_fused: bool,
) -> Result<()> {
    use vectorq::service::{PoisonPlan, QueryOptions, Service, ServiceConfig, Store};

    let (lo_text, hi_text) = (lo, hi);
    let lo: f64 = lo.parse().map_err(|_| format!("lo: {lo:?} is not a number"))?;
    let hi: f64 = hi.parse().map_err(|_| format!("hi: {hi:?} is not a number"))?;
    let data = read_f64(input)?;
    let t0 = Instant::now();
    let column = vectorq::Column::from_f64_parallel(&data, vectorq::Format::alp(), threads);
    let build_ms = t0.elapsed().as_secs_f64() * 1e3;
    // One-shot queries have no page reuse: a zero-entry cache turns every
    // lookup into a predicted bypass, which is what routes pages onto the
    // fused compressed-domain kernels instead of warming a cache that is
    // dropped on exit.
    let cache = vectorq::cache::CacheConfig {
        max_entries: 0,
        ..vectorq::cache::CacheConfig::default_config()
    };
    let store = std::sync::Arc::new(Store::with_poison(column, cache, PoisonPlan::from_env()));
    let service = Service::new(store, ServiceConfig { threads, ..ServiceConfig::default() });
    let opts = QueryOptions {
        deadline: deadline_ms.map(std::time::Duration::from_millis),
        threads: Some(threads),
        no_fused,
    };
    let result = service.sum_where(lo, hi, &opts).map_err(|e| e.to_string())?;
    println!(
        "{} values, {} pages  (compressed in {build_ms:.0} ms, {threads} threads)",
        data.len(),
        service.store().pages()
    );
    println!(
        "sum({lo_text} <= x <= {hi_text}) = {:.6}  ({} matches, {} vectors scanned, {} skipped, {:.1} ms)",
        result.value.sum,
        result.value.matches,
        result.value.vectors_scanned,
        result.value.vectors_skipped,
        result.elapsed.as_secs_f64() * 1e3
    );
    let path = match (result.pages_fused, result.pages_materialized) {
        (0, _) => "materialized",
        (_, 0) => "fused",
        _ => "mixed",
    };
    println!(
        "scan path: {path} ({} pages fused, {} materialized; {} valid / {} NaN values scanned)",
        result.pages_fused, result.pages_materialized, result.value.valid, result.value.invalid
    );
    if result.loss.is_complete() {
        println!("result complete: every page served");
    } else {
        println!(
            "PARTIAL result: {} pages / {} rows lost",
            result.loss.pages.len(),
            result.loss.rows_lost()
        );
        for loss in &result.loss.pages {
            println!("  page {:>4}  {:>7} rows  {}", loss.page, loss.rows, loss.reason);
        }
    }
    let cache = service.cache_stats();
    println!(
        "cache: {} hits, {} misses, {} evictions, {} bypasses, {} resident pages ({} KiB peak)",
        cache.hits,
        cache.misses,
        cache.evictions,
        cache.bypasses,
        cache.entries,
        cache.bytes_peak / 1024
    );
    Ok(())
}

/// `alp codecs` — list every registered codec with its capabilities.
pub fn list_codecs() -> Result<()> {
    println!("{:<12} {:<10} capabilities", "id", "name");
    for codec in alp_core::Registry::all() {
        let caps = codec.caps();
        let mut tags: Vec<&str> = Vec::new();
        if caps.random_vector_access {
            tags.push("random-vector-access");
        }
        if caps.f32 {
            tags.push("f32");
        }
        if caps.ratio_only {
            tags.push("ratio-only");
        }
        if caps.block_based {
            tags.push("block-based");
        }
        if caps.fused_scan {
            tags.push("fused-scan");
        }
        if caps.streaming_ingest {
            tags.push("streaming-ingest");
        }
        if tags.is_empty() {
            tags.push("-");
        }
        println!("{:<12} {:<10} {}", codec.id(), codec.name(), tags.join(", "));
    }
    Ok(())
}

fn verify(a: &[f64], b: &[f64], name: &str) -> Result<()> {
    if a.len() != b.len() || a.iter().zip(b).any(|(x, y)| x.to_bits() != y.to_bits()) {
        return Err(format!("{name} roundtrip failed").into());
    }
    Ok(())
}

/// `alp analyze [--root <path>] [--format text|json]` — run the workspace
/// static-analysis pass (see the `analyzer` crate). Exits 0 when clean, 1
/// when findings exist, 2 on usage or I/O errors.
pub fn analyze(args: &[String]) -> std::process::ExitCode {
    use std::process::ExitCode;

    let mut root: Option<std::path::PathBuf> = None;
    let mut format = "text";
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--root" if i + 1 < args.len() => {
                root = Some(std::path::PathBuf::from(&args[i + 1]));
                i += 2;
            }
            "--format" if i + 1 < args.len() => {
                format = &args[i + 1];
                i += 2;
            }
            other => {
                eprintln!("usage: alp analyze [--root <path>] [--format text|json] (got {other})");
                return ExitCode::from(2);
            }
        }
    }
    if format != "text" && format != "json" {
        eprintln!("unknown format {format} (expected text or json)");
        return ExitCode::from(2);
    }
    let root = match root.or_else(|| {
        std::env::current_dir().ok().and_then(|cwd| analyzer::find_workspace_root(&cwd))
    }) {
        Some(r) => r,
        None => {
            eprintln!("could not locate a workspace root (pass --root)");
            return ExitCode::from(2);
        }
    };
    match analyzer::analyze_workspace(&root) {
        Ok(findings) => {
            let rendered = if format == "json" {
                analyzer::report::render_json(&findings)
            } else {
                analyzer::report::render_text(&findings)
            };
            print!("{rendered}");
            if findings.is_empty() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("analyze: I/O error: {e}");
            ExitCode::from(2)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> String {
        let dir = std::env::temp_dir().join("alp_cli_tests");
        fs::create_dir_all(&dir).unwrap();
        dir.join(name).to_str().unwrap().to_string()
    }

    #[test]
    fn compress_decompress_cycle() {
        let input = tmp("cycle.f64");
        let packed = tmp("cycle.alp");
        let restored = tmp("cycle_restored.f64");
        let data: Vec<f64> = (0..50_000).map(|i| (i % 777) as f64 / 4.0).collect();
        write_f64(&input, &data).unwrap();
        compress(&input, &packed, false, None).unwrap();
        decompress(&packed, &restored).unwrap();
        assert_eq!(read_f64(&restored).unwrap(), data);
    }

    #[test]
    fn inspect_reports_structure() {
        let input = tmp("inspect.f64");
        let packed = tmp("inspect.alp");
        let data: Vec<f64> = (0..120_000).map(|i| (i % 100) as f64).collect();
        write_f64(&input, &data).unwrap();
        compress(&input, &packed, false, None).unwrap();
        inspect(&packed).unwrap();
    }

    #[test]
    fn gen_then_stats() {
        let out = tmp("gen.f64");
        generate("City-Temp", "20000", &out).unwrap();
        assert_eq!(read_f64(&out).unwrap().len(), 20_000);
        stats(&out, false).unwrap();
    }

    #[test]
    fn unknown_dataset_is_an_error() {
        assert!(generate("Nope", "10", &tmp("x.f64")).is_err());
    }

    #[test]
    fn bad_file_length_is_an_error() {
        let p = tmp("bad.f64");
        fs::write(&p, [1, 2, 3]).unwrap();
        assert!(read_f64(&p).is_err());
        assert!(read_f32(&p).is_err());
    }

    #[test]
    fn verify_accepts_clean_and_rejects_flipped_bit() {
        let input = tmp("verify.f64");
        let packed = tmp("verify.alp");
        let data: Vec<f64> = (0..120_000).map(|i| (i % 500) as f64 / 4.0).collect();
        write_f64(&input, &data).unwrap();
        compress(&input, &packed, false, None).unwrap();
        assert_eq!(verify_column(&packed, 2).unwrap(), VERIFY_EXIT_CLEAN);

        // One flipped payload bit: damaged, but the other row-group survives.
        let mut bytes = fs::read(&packed).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
        let damaged = tmp("verify_damaged.alp");
        fs::write(&damaged, &bytes).unwrap();
        assert_eq!(verify_column(&damaged, 2).unwrap(), VERIFY_EXIT_SALVAGEABLE);

        // A wrecked magic makes the header unrecoverable.
        let mut bytes = fs::read(&packed).unwrap();
        bytes[0] = b'X';
        let unreadable = tmp("verify_unreadable.alp");
        fs::write(&unreadable, &bytes).unwrap();
        assert_eq!(verify_column(&unreadable, 2).unwrap(), VERIFY_EXIT_UNREADABLE);
    }

    #[test]
    fn parity_column_repairs_scrubs_and_verifies() {
        let input = tmp("parity.f64");
        let packed = tmp("parity.alp");
        let restored = tmp("parity_restored.f64");
        let data: Vec<f64> = (0..250_000).map(|i| (i % 999) as f64 / 8.0).collect();
        write_f64(&input, &data).unwrap();
        compress(&input, &packed, false, Some(4)).unwrap();
        let pristine = fs::read(&packed).unwrap();
        assert_eq!(verify_column(&packed, 2).unwrap(), VERIFY_EXIT_CLEAN);
        assert_eq!(scrub(&packed, 2, false).unwrap(), VERIFY_EXIT_CLEAN);

        // Corrupt one byte deep inside the first row-group's frame body.
        let mut bytes = pristine.clone();
        bytes[600] ^= 0xFF;
        fs::write(&packed, &bytes).unwrap();

        // Report-only scrub finds and repairs the damage (exit 2) without
        // touching the file; verify agrees.
        assert_eq!(scrub(&packed, 2, false).unwrap(), VERIFY_EXIT_REPAIRED);
        assert_eq!(fs::read(&packed).unwrap(), bytes, "report-only scrub must not rewrite");
        assert_eq!(verify_column(&packed, 2).unwrap(), VERIFY_EXIT_REPAIRED);

        // Repair-on-read decompression recovers the original data exactly.
        decompress(&packed, &restored).unwrap();
        assert_eq!(read_f64(&restored).unwrap(), data);

        // --rewrite replaces the file with its repaired re-encoding, which
        // matches the pristine bytes exactly (repair is byte-identical and
        // the parity group size is preserved).
        assert_eq!(scrub(&packed, 2, true).unwrap(), VERIFY_EXIT_REPAIRED);
        assert_eq!(fs::read(&packed).unwrap(), pristine);
        assert_eq!(verify_column(&packed, 2).unwrap(), VERIFY_EXIT_CLEAN);
    }

    #[test]
    fn parity_stream_repairs_on_read_and_scrubs() {
        let input = tmp("pstream.f64");
        let packed = tmp("pstream.alpt");
        let restored = tmp("pstream_restored.f64");
        let data: Vec<f64> = (0..250_000).map(|i| (i % 123) as f64 / 2.0).collect();
        write_f64(&input, &data).unwrap();
        compress_stream(&input, &packed, false, 2, None, Some(2)).unwrap();
        assert_eq!(scrub(&packed, 2, false).unwrap(), VERIFY_EXIT_CLEAN);

        // Corrupt a byte inside the first data frame's body.
        let mut bytes = fs::read(&packed).unwrap();
        bytes[600] ^= 0xFF;
        fs::write(&packed, &bytes).unwrap();
        assert_eq!(scrub(&packed, 2, false).unwrap(), VERIFY_EXIT_REPAIRED);
        decompress(&packed, &restored).unwrap();
        assert_eq!(read_f64(&restored).unwrap(), data);

        // Two damaged frames in one parity group exceed the repair budget:
        // scrub degrades to an honest loss report.
        let mut bytes = fs::read(&packed).unwrap();
        bytes[600] ^= 0xFF;
        let second_frame = bytes.len() / 3;
        bytes[second_frame] ^= 0xFF;
        fs::write(&packed, &bytes).unwrap();
        let code = scrub(&packed, 2, false).unwrap();
        assert!(code == VERIFY_EXIT_SALVAGEABLE || code == VERIFY_EXIT_REPAIRED);
    }

    #[test]
    fn shootout_runs_across_thread_counts() {
        let input = tmp("shootout.f64");
        let data: Vec<f64> = (0..120_000).map(|i| (i % 321) as f64 / 8.0).collect();
        write_f64(&input, &data).unwrap();
        for threads in [1, 3] {
            shootout(&input, threads).unwrap();
        }
    }

    #[test]
    fn f32_compress_cycle() {
        let input = tmp("c32.f32");
        let packed = tmp("c32.alp");
        let restored = tmp("c32_restored.f32");
        let data: Vec<f32> = (0..30_000).map(|i| (i % 300) as f32 / 2.0).collect();
        let raw: Vec<u8> = data.iter().flat_map(|v| v.to_le_bytes()).collect();
        fs::write(&input, raw).unwrap();
        compress(&input, &packed, true, None).unwrap();
        decompress(&packed, &restored).unwrap();
        assert_eq!(read_f32(&restored).unwrap(), data);
    }
}
