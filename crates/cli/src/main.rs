//! `alp` — command-line front end for the ALP compression library.
//!
//! ```text
//! alp compress   <in.f64> <out.alp> [--f32] [--parity K]   raw LE floats -> ALP column
//!                [--stream [--threads N] [--pipeline-depth D]]
//!                --stream writes the incremental "ALPT" stream layout via
//!                the pipelined ingest path (compression overlapped with
//!                file reads; identical bytes at every N and D);
//!                --parity K emits one XOR parity frame per K row-groups so
//!                any single damaged row-group per group repairs on read
//! alp decompress <in.alp> <out.f64>             ALP column/stream -> raw LE floats
//!                (repair-on-read: parity-reconstructible damage decompresses
//!                byte-identically, with the repaired row-groups named)
//! alp inspect    <in.alp>                       header, row-groups, schemes
//! alp verify     <in.alp> [--threads N]         checksum + salvage report
//!                exit codes: 0 clean, 2 damaged-but-fully-repaired,
//!                3 salvageable, 4 unreadable, 1 error
//! alp scrub      <in.alp> [--threads N] [--rewrite]
//!                walk + repair report for a column or stream; --rewrite
//!                atomically replaces a fully-repaired column file
//!                exit codes: same as verify
//! alp stats      <in.f64> [--f32]               Table 2-style dataset metrics
//! alp gen        <dataset> <n> <out.f64>        synthetic dataset to a file
//! alp shootout   <in.f64> [--threads N]         ratio/speed of every codec
//! alp query      <in.f64> <lo> <hi> [--threads N] [--deadline-ms M] [--no-fused]
//!                predicated sum through the query service (cache, deadlines,
//!                quarantine — ALP_FAULT_SEED injects bad pages; --no-fused
//!                forces the materializing scan path)
//! alp codecs                                    list the codec registry
//! alp datasets                                  list generatable datasets
//! alp analyze    [--root <path>] [--format text|json]   workspace lint pass
//! ```

#![forbid(unsafe_code)]

mod commands;

use std::process::ExitCode;

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    // `analyze` owns its value-taking flags (--root, --format), which the
    // generic boolean-flag partition below would mangle.
    if args.first().map(String::as_str) == Some("analyze") {
        return commands::analyze(&args[1..]);
    }
    // `--threads` takes a value, so extract it (and its argument) before the
    // boolean-flag partition below.
    let mut threads_flag: Option<usize> = None;
    if let Some(i) = args.iter().position(|a| a == "--threads") {
        let Some(value) = args.get(i + 1) else {
            eprintln!("--threads requires a value");
            return usage();
        };
        match value.parse::<usize>() {
            Ok(n) if n > 0 => threads_flag = Some(n),
            _ => {
                eprintln!("--threads expects a positive integer, got {value:?}");
                return usage();
            }
        }
        args.drain(i..=i + 1);
    }
    // `--pipeline-depth` (compress --stream) takes a value too.
    let mut depth_flag: Option<usize> = None;
    if let Some(i) = args.iter().position(|a| a == "--pipeline-depth") {
        let Some(value) = args.get(i + 1) else {
            eprintln!("--pipeline-depth requires a value");
            return usage();
        };
        match value.parse::<usize>() {
            Ok(n) if n > 0 => depth_flag = Some(n),
            _ => {
                eprintln!("--pipeline-depth expects a positive integer, got {value:?}");
                return usage();
            }
        }
        args.drain(i..=i + 1);
    }
    // `--parity` (compress) takes a value too: the row-group group size.
    let mut parity_flag: Option<usize> = None;
    if let Some(i) = args.iter().position(|a| a == "--parity") {
        let Some(value) = args.get(i + 1) else {
            eprintln!("--parity requires a value (row-groups per parity frame)");
            return usage();
        };
        match value.parse::<usize>() {
            Ok(n) if n > 0 && n <= 255 => parity_flag = Some(n),
            _ => {
                eprintln!("--parity expects an integer in 1..=255, got {value:?}");
                return usage();
            }
        }
        args.drain(i..=i + 1);
    }
    // `--deadline-ms` (query) takes a value too.
    let mut deadline_ms: Option<u64> = None;
    if let Some(i) = args.iter().position(|a| a == "--deadline-ms") {
        let Some(value) = args.get(i + 1) else {
            eprintln!("--deadline-ms requires a value");
            return usage();
        };
        match value.parse::<u64>() {
            Ok(ms) if ms > 0 => deadline_ms = Some(ms),
            _ => {
                eprintln!("--deadline-ms expects a positive integer, got {value:?}");
                return usage();
            }
        }
        args.drain(i..=i + 1);
    }
    let threads = alp_core::par::resolve_threads(threads_flag);
    let (flags, positional): (Vec<&String>, Vec<&String>) =
        args.iter().partition(|a| a.starts_with("--"));
    let f32_mode = flags.iter().any(|f| f.as_str() == "--f32");
    let no_fused = flags.iter().any(|f| f.as_str() == "--no-fused");
    let stream_mode = flags.iter().any(|f| f.as_str() == "--stream");
    let rewrite = flags.iter().any(|f| f.as_str() == "--rewrite");
    if let Some(unknown) = flags
        .iter()
        .find(|f| !matches!(f.as_str(), "--f32" | "--no-fused" | "--stream" | "--rewrite"))
    {
        eprintln!("unknown flag {unknown}");
        return usage();
    }

    let result = match positional.split_first() {
        Some((cmd, rest)) => {
            let rest: Vec<&str> = rest.iter().map(|s| s.as_str()).collect();
            match (cmd.as_str(), rest.as_slice()) {
                ("compress", [input, output]) if stream_mode => commands::compress_stream(
                    input,
                    output,
                    f32_mode,
                    threads,
                    depth_flag,
                    parity_flag,
                ),
                ("compress", [input, output]) => {
                    commands::compress(input, output, f32_mode, parity_flag)
                }
                ("decompress", [input, output]) => commands::decompress(input, output),
                ("inspect", [input]) => commands::inspect(input),
                // `verify` and `scrub` triage archives through their exit
                // codes (clean / repaired / salvageable / unreadable), so
                // they bypass the unit match.
                ("verify", [input]) => {
                    return match commands::verify_column(input, threads) {
                        Ok(code) => ExitCode::from(code),
                        Err(e) => {
                            eprintln!("error: {e}");
                            ExitCode::FAILURE
                        }
                    };
                }
                ("scrub", [input]) => {
                    return match commands::scrub(input, threads, rewrite) {
                        Ok(code) => ExitCode::from(code),
                        Err(e) => {
                            eprintln!("error: {e}");
                            ExitCode::FAILURE
                        }
                    };
                }
                ("stats", [input]) => commands::stats(input, f32_mode),
                ("gen", [dataset, n, output]) => commands::generate(dataset, n, output),
                ("shootout", [input]) => commands::shootout(input, threads),
                ("query", [input, lo, hi]) => {
                    commands::query(input, lo, hi, threads, deadline_ms, no_fused)
                }
                ("codecs", []) => commands::list_codecs(),
                ("datasets", []) => commands::list_datasets(),
                _ => return usage(),
            }
        }
        None => return usage(),
    };

    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  alp compress   <in.f64> <out.alp> [--f32] [--parity K] [--stream [--threads N] [--pipeline-depth D]]\n  alp decompress <in.alp> <out.f64>\n  alp inspect    <in.alp>\n  alp verify     <in.alp> [--threads N]\n  alp scrub      <in.alp> [--threads N] [--rewrite]\n  alp stats      <in.f64> [--f32]\n  alp gen        <dataset> <n> <out.f64>\n  alp shootout   <in.f64> [--threads N]\n  alp query      <in.f64> <lo> <hi> [--threads N] [--deadline-ms M] [--no-fused]\n  alp codecs\n  alp datasets\n  alp analyze    [--root <path>] [--format text|json]"
    );
    ExitCode::FAILURE
}
