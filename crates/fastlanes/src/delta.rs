//! Delta encoding with zigzag mapping, for sorted or slowly-drifting integer
//! streams (e.g. ALP-encoded dictionaries or run values in a cascade).

use crate::bits_needed;

/// Maps a signed delta to an unsigned value with small magnitudes near zero.
#[inline]
pub const fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag`].
#[inline]
pub const fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// Delta-encodes `input` in place semantics: returns `(first, zigzagged deltas)`.
pub fn delta_encode(input: &[i64]) -> (i64, Vec<u64>) {
    if input.is_empty() {
        return (0, Vec::new());
    }
    let first = input[0];
    let mut deltas = Vec::with_capacity(input.len() - 1);
    let mut prev = first;
    for &v in &input[1..] {
        deltas.push(zigzag(v.wrapping_sub(prev)));
        prev = v;
    }
    (first, deltas)
}

/// Reconstructs the original values from [`delta_encode`] output.
pub fn delta_decode(first: i64, deltas: &[u64], out: &mut Vec<i64>) {
    out.clear();
    out.reserve(deltas.len() + 1);
    out.push(first);
    let mut prev = first;
    for &d in deltas {
        prev = prev.wrapping_add(unzigzag(d));
        out.push(prev);
    }
}

/// Bits per delta needed to pack the zigzagged stream.
pub fn delta_width(deltas: &[u64]) -> usize {
    bits_needed(deltas.iter().copied().max().unwrap_or(0))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zigzag_roundtrip_edges() {
        for v in [0i64, 1, -1, 2, -2, i64::MAX, i64::MIN, 12345, -98765] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
    }

    #[test]
    fn zigzag_keeps_small_magnitudes_small() {
        assert_eq!(zigzag(0), 0);
        assert_eq!(zigzag(-1), 1);
        assert_eq!(zigzag(1), 2);
        assert_eq!(zigzag(-2), 3);
    }

    #[test]
    fn delta_roundtrip_sorted() {
        let input: Vec<i64> = (0..500).map(|i| i * 7 + 3).collect();
        let (first, deltas) = delta_encode(&input);
        assert!(deltas.iter().all(|&d| d == zigzag(7)));
        let mut out = Vec::new();
        delta_decode(first, &deltas, &mut out);
        assert_eq!(out, input);
    }

    #[test]
    fn delta_roundtrip_wrapping_extremes() {
        let input = vec![i64::MIN, i64::MAX, 0, -1, 1];
        let (first, deltas) = delta_encode(&input);
        let mut out = Vec::new();
        delta_decode(first, &deltas, &mut out);
        assert_eq!(out, input);
    }

    #[test]
    fn empty_and_singleton() {
        let (f, d) = delta_encode(&[]);
        assert_eq!((f, d.len()), (0, 0));
        let (f, d) = delta_encode(&[99]);
        assert_eq!((f, d.len()), (99, 0));
        let mut out = Vec::new();
        delta_decode(f, &d, &mut out);
        assert_eq!(out, vec![99]);
    }

    #[test]
    fn width_of_constant_stream_is_zero() {
        let input: Vec<i64> = vec![5; 100];
        let (_, deltas) = delta_encode(&input);
        assert_eq!(delta_width(&deltas), 0);
    }
}
