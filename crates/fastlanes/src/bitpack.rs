//! Bit-packing of 1024-value `u64` vectors to any width `0..=64`.
//!
//! Values are laid out LSB-first within consecutive little-endian words: value
//! `i` occupies bits `[i*W, (i+1)*W)` of the packed stream. The unpack kernel
//! is branch-free — it unconditionally reads the word pair straddling each
//! value, which is why packed buffers carry one zeroed pad word (see
//! [`crate::packed_len`]).

use crate::dispatch::{width_mask, with_width, WidthKernel};
use crate::{packed_len, VECTOR_SIZE};

/// Packs `input` (exactly 1024 values, each already `< 2^width`) into a fresh
/// buffer of [`packed_len`]`(width)` words.
///
/// Values wider than `width` bits are truncated (callers compute the width
/// from the data, so this only matters for deliberately lossy use).
pub fn pack(input: &[u64], width: usize) -> Vec<u64> {
    assert_eq!(input.len(), VECTOR_SIZE);
    let mut out = vec![0u64; packed_len(width)];
    with_width(width, PackKernel { input, out: &mut out });
    out
}

/// Unpacks a 1024-value vector of `width`-bit values from `packed` into `out`.
///
/// `packed` must hold at least [`packed_len`]`(width)` words (the final word
/// being padding that is read but ignored).
pub fn unpack(packed: &[u64], width: usize, out: &mut [u64]) {
    assert_eq!(out.len(), VECTOR_SIZE);
    assert!(packed.len() >= packed_len(width));
    with_width(width, UnpackKernel { packed, out });
}

struct PackKernel<'a> {
    input: &'a [u64],
    out: &'a mut [u64],
}

impl WidthKernel for PackKernel<'_> {
    type Out = ();
    fn run<const W: usize>(self) {
        pack_const::<W>(self.input, self.out);
    }
}

struct UnpackKernel<'a> {
    packed: &'a [u64],
    out: &'a mut [u64],
}

impl WidthKernel for UnpackKernel<'_> {
    type Out = ();
    fn run<const W: usize>(self) {
        unpack_const::<W>(self.packed, self.out);
    }
}

/// Monomorphized packing loop. Public so sibling crates can build fused
/// kernels at a fixed width without re-dispatching.
///
/// Like the unpack kernel, packing proceeds in 16 independent blocks of 64
/// values (64 values fill exactly `W` words), so the accumulator dependency
/// chain is per-block and the compiler can overlap blocks.
#[inline]
pub fn pack_const<const W: usize>(input: &[u64], out: &mut [u64]) {
    if W == 0 {
        return;
    }
    if W == 64 {
        out[..VECTOR_SIZE].copy_from_slice(&input[..VECTOR_SIZE]);
        return;
    }
    let mask = width_mask::<W>();
    for block in 0..VECTOR_SIZE / 64 {
        let values = &input[block * 64..block * 64 + 64];
        let words = &mut out[block * W..block * W + W];
        let mut acc: u64 = 0;
        let mut filled: usize = 0;
        let mut word = 0usize;
        for &raw in values.iter() {
            let v = raw & mask;
            acc |= v << filled;
            filled += W;
            if filled >= 64 {
                words[word] = acc;
                word += 1;
                filled -= 64;
                // Bits of `v` that did not fit go to the next word's bottom.
                acc = if filled > 0 { v >> (W - filled) } else { 0 };
            }
        }
        debug_assert_eq!(filled, 0);
        debug_assert_eq!(word, W);
    }
}

/// Monomorphized branch-free unpacking loop; reads one word past the last
/// value, which [`packed_len`] reserves.
///
/// The loop is structured as 16 blocks of 64 values: within a block every
/// value's word index and bit offset is an affine function of the (fully
/// unrollable) inner index with `W` a compile-time constant, so LLVM turns
/// the whole block into straight-line constant-shift code — the property
/// FastLanes' layout is designed around.
#[inline]
#[allow(clippy::needless_range_loop)] // affine-index form the vectorizer needs
                                      // ANALYZER-ALLOW(no-panic): fixed 1024-lane FastLanes geometry — callers
                                      // size `packed` via packed_len::<W>() (16*W words plus the pad word) and
                                      // `out` holds VECTOR_SIZE lanes; shift casts are bounded by the word width.
pub fn unpack_const<const W: usize>(packed: &[u64], out: &mut [u64]) {
    if W == 0 {
        out[..VECTOR_SIZE].fill(0);
        return;
    }
    if W == 64 {
        out[..VECTOR_SIZE].copy_from_slice(&packed[..VECTOR_SIZE]);
        return;
    }
    let mask = width_mask::<W>();
    // 64 consecutive values span exactly W words.
    for block in 0..VECTOR_SIZE / 64 {
        let words = &packed[block * W..block * W + W + 1];
        let out_block = &mut out[block * 64..block * 64 + 64];
        for j in 0..64 {
            let bit = j * W;
            let word = bit >> 6;
            let off = (bit & 63) as u32;
            let lo = words[word] >> off;
            // `(hi << 1) << (63 - off)` == `hi << (64 - off)` without the
            // undefined shift-by-64 when off == 0 (it then yields 0).
            let hi = (words[word + 1] << 1) << (63 - off);
            out_block[j] = (lo | hi) & mask;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(width: usize) -> Vec<u64> {
        let mask = if width == 64 {
            u64::MAX
        } else if width == 0 {
            0
        } else {
            (1 << width) - 1
        };
        (0..VECTOR_SIZE as u64).map(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15) & mask).collect()
    }

    #[test]
    fn roundtrip_every_width() {
        for width in 0..=64 {
            let input = sample(width);
            let packed = pack(&input, width);
            assert_eq!(packed.len(), packed_len(width));
            let mut out = vec![0u64; VECTOR_SIZE];
            unpack(&packed, width, &mut out);
            assert_eq!(out, input, "width {width}");
        }
    }

    #[test]
    fn packing_truncates_to_width() {
        let input = vec![u64::MAX; VECTOR_SIZE];
        let packed = pack(&input, 3);
        let mut out = vec![0u64; VECTOR_SIZE];
        unpack(&packed, 3, &mut out);
        assert!(out.iter().all(|&v| v == 0b111));
    }

    #[test]
    fn width_zero_is_all_zeros() {
        let input = sample(0);
        let packed = pack(&input, 0);
        assert_eq!(packed.len(), 1);
        let mut out = vec![1u64; VECTOR_SIZE];
        unpack(&packed, 0, &mut out);
        assert!(out.iter().all(|&v| v == 0));
    }

    #[test]
    fn max_values_at_each_width_survive() {
        for width in 1..=64usize {
            let max = if width == 64 { u64::MAX } else { (1 << width) - 1 };
            let input = vec![max; VECTOR_SIZE];
            let packed = pack(&input, width);
            let mut out = vec![0u64; VECTOR_SIZE];
            unpack(&packed, width, &mut out);
            assert!(out.iter().all(|&v| v == max), "width {width}");
        }
    }
}
