//! Runtime bit-width → monomorphized kernel dispatch.
//!
//! Packing kernels want the bit width as a compile-time constant so the
//! compiler can fully unroll and auto-vectorize the inner loop, but the width
//! is only known at runtime (it is stored per vector). [`with_width`] bridges
//! the two: a 65-arm match, written once, that instantiates a caller-supplied
//! [`WidthKernel`] at every width.

/// A computation parameterized by a const bit width.
///
/// Implementors capture their inputs/outputs in the struct and do the work in
/// [`WidthKernel::run`]; [`with_width`] selects the monomorphization.
pub trait WidthKernel {
    /// Result produced by the kernel.
    type Out;
    /// Executes the kernel with `W` as a compile-time width in `0..=64`.
    fn run<const W: usize>(self) -> Self::Out;
}

/// Invokes `k` with the const-generic width equal to the runtime `width`.
///
/// # Panics
/// Panics if `width > 64`.
#[inline]
pub fn with_width<K: WidthKernel>(width: usize, k: K) -> K::Out {
    match width {
        0 => k.run::<0>(),
        1 => k.run::<1>(),
        2 => k.run::<2>(),
        3 => k.run::<3>(),
        4 => k.run::<4>(),
        5 => k.run::<5>(),
        6 => k.run::<6>(),
        7 => k.run::<7>(),
        8 => k.run::<8>(),
        9 => k.run::<9>(),
        10 => k.run::<10>(),
        11 => k.run::<11>(),
        12 => k.run::<12>(),
        13 => k.run::<13>(),
        14 => k.run::<14>(),
        15 => k.run::<15>(),
        16 => k.run::<16>(),
        17 => k.run::<17>(),
        18 => k.run::<18>(),
        19 => k.run::<19>(),
        20 => k.run::<20>(),
        21 => k.run::<21>(),
        22 => k.run::<22>(),
        23 => k.run::<23>(),
        24 => k.run::<24>(),
        25 => k.run::<25>(),
        26 => k.run::<26>(),
        27 => k.run::<27>(),
        28 => k.run::<28>(),
        29 => k.run::<29>(),
        30 => k.run::<30>(),
        31 => k.run::<31>(),
        32 => k.run::<32>(),
        33 => k.run::<33>(),
        34 => k.run::<34>(),
        35 => k.run::<35>(),
        36 => k.run::<36>(),
        37 => k.run::<37>(),
        38 => k.run::<38>(),
        39 => k.run::<39>(),
        40 => k.run::<40>(),
        41 => k.run::<41>(),
        42 => k.run::<42>(),
        43 => k.run::<43>(),
        44 => k.run::<44>(),
        45 => k.run::<45>(),
        46 => k.run::<46>(),
        47 => k.run::<47>(),
        48 => k.run::<48>(),
        49 => k.run::<49>(),
        50 => k.run::<50>(),
        51 => k.run::<51>(),
        52 => k.run::<52>(),
        53 => k.run::<53>(),
        54 => k.run::<54>(),
        55 => k.run::<55>(),
        56 => k.run::<56>(),
        57 => k.run::<57>(),
        58 => k.run::<58>(),
        59 => k.run::<59>(),
        60 => k.run::<60>(),
        61 => k.run::<61>(),
        62 => k.run::<62>(),
        63 => k.run::<63>(),
        64 => k.run::<64>(),
        // ANALYZER-ALLOW(no-panic): exhaustive match over usize needs a
        // catch-all arm; widths come from `bit_width(u64)` and are ≤ 64 by
        // construction, so this arm is unreachable without a kernel bug.
        w => panic!("bit width {w} out of range 0..=64"),
    }
}

/// Mask with the low `W` bits set; full mask for `W == 64`.
#[inline]
pub const fn width_mask<const W: usize>() -> u64 {
    if W >= 64 {
        u64::MAX
    } else if W == 0 {
        0
    } else {
        (1u64 << W) - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Probe;
    impl WidthKernel for Probe {
        type Out = usize;
        fn run<const W: usize>(self) -> usize {
            W
        }
    }

    #[test]
    fn dispatch_hits_every_width() {
        for w in 0..=64 {
            assert_eq!(with_width(w, Probe), w);
        }
    }

    #[test]
    #[should_panic]
    fn dispatch_rejects_oversized_width() {
        with_width(65, Probe);
    }

    #[test]
    fn masks() {
        assert_eq!(width_mask::<0>(), 0);
        assert_eq!(width_mask::<1>(), 1);
        assert_eq!(width_mask::<63>(), u64::MAX >> 1);
        assert_eq!(width_mask::<64>(), u64::MAX);
    }
}
