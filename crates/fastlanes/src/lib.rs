//! Lightweight vectorized integer compression, modeled on the FastLanes library
//! the ALP paper builds on.
//!
//! All kernels operate on vectors of exactly [`VECTOR_SIZE`] = 1024 values, the
//! granularity at which ALP (and vectorized query engines generally) move data.
//! The hot loops are branch-free and monomorphized per bit width via
//! [`dispatch::with_width`], so the compiler auto-vectorizes them — the property
//! the paper's speed results rest on.
//!
//! Provided encodings:
//!
//! * [`bitpack`] — pack/unpack `u64` values to any width `0..=64`.
//! * [`ffor`] — Frame-Of-Reference fused with bit-packing (the paper's FFOR),
//!   plus deliberately *unfused* variants for the Figure 5 kernel-fusion ablation.
//! * [`fused`] — fused unpack + FOR-add + predicate + aggregate scan kernels
//!   over the interleaved layout (compressed-domain filtering, no
//!   materialization).
//! * [`delta`] — delta + zigzag encoding for sorted-ish data.
//! * [`rle`] — run-length encoding with separate run-value / run-length streams.
//! * [`dict`] — dictionary encoding with packed codes.
//!
//! # Layout note
//! The default is a word-sequential LSB-first packed layout rather than
//! FastLanes' interleaved lane order. Every claim reproduced here (fusion
//! speedup, scalar-vs-vectorized gap, compression ratios) is independent of
//! the lane permutation; [`interleaved`] provides the lane-transposed layout
//! as well, and the `layout_ablation` bench compares the two.

#![forbid(unsafe_code)]

pub mod bitpack;
pub mod bitpack32;
pub mod delta;
pub mod dict;
pub mod dispatch;
pub mod ffor;
pub mod fused;
pub mod interleaved;
pub mod rle;

/// Number of values every kernel processes at a time.
pub const VECTOR_SIZE: usize = 1024;

/// Number of `u64` words a packed 1024-value vector of `width` bits occupies,
/// *including* the single zeroed pad word the unpack kernels read past the end.
#[inline]
pub const fn packed_len(width: usize) -> usize {
    width * (VECTOR_SIZE / 64) + 1
}

/// Number of bits needed to represent `v` (0 for 0).
#[inline]
pub const fn bits_needed(v: u64) -> usize {
    (64 - v.leading_zeros()) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn packed_len_matches_width() {
        assert_eq!(packed_len(0), 1);
        assert_eq!(packed_len(1), 17);
        assert_eq!(packed_len(64), 1025);
    }

    #[test]
    fn bits_needed_boundaries() {
        assert_eq!(bits_needed(0), 0);
        assert_eq!(bits_needed(1), 1);
        assert_eq!(bits_needed(2), 2);
        assert_eq!(bits_needed(255), 8);
        assert_eq!(bits_needed(256), 9);
        assert_eq!(bits_needed(u64::MAX), 64);
    }
}
