//! Run-length encoding with separate run-value and run-length streams, so each
//! stream can be further compressed (the cascade the paper describes: RLE, then
//! ALP on the run values, FOR/BP on the run lengths).

/// A run-length encoded sequence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rle<T> {
    /// One entry per run.
    pub values: Vec<T>,
    /// Length of each run, parallel to `values`.
    pub lengths: Vec<u32>,
}

impl<T: Copy + PartialEq> Rle<T> {
    /// Encodes `input` as runs of equal adjacent values.
    ///
    /// Equality is `PartialEq`; for floats, encode the *bit patterns* (u64) to
    /// keep NaNs and signed zeros lossless.
    pub fn encode(input: &[T]) -> Self {
        let mut values = Vec::new();
        let mut lengths = Vec::new();
        let mut iter = input.iter();
        if let Some(&first) = iter.next() {
            let mut cur = first;
            let mut run: u32 = 1;
            for &v in iter {
                if v == cur {
                    run += 1;
                } else {
                    values.push(cur);
                    lengths.push(run);
                    cur = v;
                    run = 1;
                }
            }
            values.push(cur);
            lengths.push(run);
        }
        Self { values, lengths }
    }

    /// Total number of values the encoded form expands to.
    pub fn decoded_len(&self) -> usize {
        self.lengths.iter().map(|&l| l as usize).sum()
    }

    /// Expands the runs back into a flat vector.
    pub fn decode(&self) -> Vec<T> {
        let mut out = Vec::with_capacity(self.decoded_len());
        for (&v, &l) in self.values.iter().zip(&self.lengths) {
            out.resize(out.len() + l as usize, v);
        }
        out
    }

    /// Number of runs.
    pub fn run_count(&self) -> usize {
        self.values.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_runs() {
        let input = vec![1u64, 1, 1, 2, 2, 3, 1, 1];
        let rle = Rle::encode(&input);
        assert_eq!(rle.values, vec![1, 2, 3, 1]);
        assert_eq!(rle.lengths, vec![3, 2, 1, 2]);
        assert_eq!(rle.decode(), input);
    }

    #[test]
    fn empty_input() {
        let rle = Rle::<u64>::encode(&[]);
        assert_eq!(rle.run_count(), 0);
        assert!(rle.decode().is_empty());
    }

    #[test]
    fn single_long_run() {
        let input = vec![7u64; 10_000];
        let rle = Rle::encode(&input);
        assert_eq!(rle.run_count(), 1);
        assert_eq!(rle.decoded_len(), 10_000);
        assert_eq!(rle.decode(), input);
    }

    #[test]
    fn all_distinct_degenerates_gracefully() {
        let input: Vec<u64> = (0..100).collect();
        let rle = Rle::encode(&input);
        assert_eq!(rle.run_count(), 100);
        assert_eq!(rle.decode(), input);
    }

    #[test]
    fn float_bits_keep_nan_runs() {
        let nan = f64::NAN.to_bits();
        let input = vec![nan, nan, 1.0f64.to_bits()];
        let rle = Rle::encode(&input);
        assert_eq!(rle.run_count(), 2);
        assert_eq!(rle.decode(), input);
    }
}
