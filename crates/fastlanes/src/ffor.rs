//! Frame-Of-Reference encoding fused with bit-packing — the paper's **FFOR**.
//!
//! FOR subtracts a per-vector base (the minimum) from every value so the
//! residuals need few bits; FFOR fuses the subtraction into the packing loop
//! (and the addition into the unpacking loop), saving a round trip through a
//! temporary buffer. The *unfused* variants are kept deliberately: the Figure 5
//! ablation of the paper measures exactly this fusion.
//!
//! Bases are `i64` (ALP's encoded integers are signed); residuals are computed
//! with wrapping two's-complement arithmetic, which is order-preserving for
//! `v >= base`, so any `i64` range — including ones spanning more than
//! `i64::MAX` — packs correctly into `u64` residuals.

use crate::dispatch::{width_mask, with_width, WidthKernel};
use crate::{bits_needed, packed_len, VECTOR_SIZE};

/// Smallest width (bits per residual) that losslessly frames `input` against
/// its minimum. Returns `(base, width)`.
pub fn frame_of(input: &[i64]) -> (i64, usize) {
    assert!(!input.is_empty());
    let mut min = i64::MAX;
    let mut max = i64::MIN;
    for &v in input {
        min = min.min(v);
        max = max.max(v);
    }
    let range = (max as u64).wrapping_sub(min as u64);
    (min, bits_needed(range))
}

/// Fused subtract-base + bit-pack of a 1024-value vector.
pub fn ffor_pack(input: &[i64], base: i64, width: usize) -> Vec<u64> {
    assert_eq!(input.len(), VECTOR_SIZE);
    let mut out = vec![0u64; packed_len(width)];
    with_width(width, FforPack { input, base, out: &mut out });
    out
}

/// Fused bit-unpack + add-base of a 1024-value vector.
pub fn ffor_unpack(packed: &[u64], base: i64, width: usize, out: &mut [i64]) {
    assert_eq!(out.len(), VECTOR_SIZE);
    assert!(packed.len() >= packed_len(width));
    with_width(width, FforUnpack { packed, base, out });
}

/// Unfused FOR encode: writes residuals to `residuals`, then the caller packs
/// them with [`crate::bitpack::pack`]. Exists for the kernel-fusion ablation.
pub fn for_encode(input: &[i64], base: i64, residuals: &mut [u64]) {
    assert_eq!(input.len(), residuals.len());
    for (r, &v) in residuals.iter_mut().zip(input) {
        *r = (v as u64).wrapping_sub(base as u64);
    }
}

/// Unfused FOR decode: adds the base back onto unpacked residuals.
pub fn for_decode(residuals: &[u64], base: i64, out: &mut [i64]) {
    assert_eq!(residuals.len(), out.len());
    for (o, &r) in out.iter_mut().zip(residuals) {
        *o = r.wrapping_add(base as u64) as i64;
    }
}

struct FforPack<'a> {
    input: &'a [i64],
    base: i64,
    out: &'a mut [u64],
}

impl WidthKernel for FforPack<'_> {
    type Out = ();
    fn run<const W: usize>(self) {
        ffor_pack_const::<W>(self.input, self.base, self.out);
    }
}

struct FforUnpack<'a> {
    packed: &'a [u64],
    base: i64,
    out: &'a mut [i64],
}

impl WidthKernel for FforUnpack<'_> {
    type Out = ();
    fn run<const W: usize>(self) {
        ffor_unpack_const::<W>(self.packed, self.base, self.out);
    }
}

/// Monomorphized fused pack. Public for fixed-width fused kernels downstream.
#[inline]
pub fn ffor_pack_const<const W: usize>(input: &[i64], base: i64, out: &mut [u64]) {
    if W == 64 {
        // Residuals occupy full words; no masking needed.
        for i in 0..VECTOR_SIZE {
            out[i] = (input[i] as u64).wrapping_sub(base as u64);
        }
        return;
    }
    if W == 0 {
        return;
    }
    let mask = width_mask::<W>();
    let base_u = base as u64;
    // Per-block accumulator chains (see `bitpack::pack_const`).
    for block in 0..VECTOR_SIZE / 64 {
        let values = &input[block * 64..block * 64 + 64];
        let words = &mut out[block * W..block * W + W];
        let mut acc: u64 = 0;
        let mut filled: usize = 0;
        let mut word = 0usize;
        for &raw in values.iter() {
            let v = (raw as u64).wrapping_sub(base_u) & mask;
            acc |= v << filled;
            filled += W;
            if filled >= 64 {
                words[word] = acc;
                word += 1;
                filled -= 64;
                acc = if filled > 0 { v >> (W - filled) } else { 0 };
            }
        }
        debug_assert_eq!(filled, 0);
    }
}

/// Monomorphized fused unpack. Public for fixed-width fused kernels downstream.
#[inline]
#[allow(clippy::needless_range_loop)] // affine-index form the vectorizer needs
                                      // ANALYZER-ALLOW(no-panic): fixed 1024-lane FastLanes geometry — callers
                                      // size `packed` via packed_len::<W>() (16*W words plus the pad word) and
                                      // `out` holds VECTOR_SIZE lanes; shift casts are bounded by the word width.
pub fn ffor_unpack_const<const W: usize>(packed: &[u64], base: i64, out: &mut [i64]) {
    if W == 0 {
        out[..VECTOR_SIZE].fill(base);
        return;
    }
    if W == 64 {
        for i in 0..VECTOR_SIZE {
            out[i] = packed[i].wrapping_add(base as u64) as i64;
        }
        return;
    }
    let mask = width_mask::<W>();
    let base_u = base as u64;
    // Block structure mirrors `bitpack::unpack_const`: constant shifts after
    // unrolling, so the loop auto-vectorizes.
    for block in 0..VECTOR_SIZE / 64 {
        let words = &packed[block * W..block * W + W + 1];
        let out_block = &mut out[block * 64..block * 64 + 64];
        for j in 0..64 {
            let bit = j * W;
            let word = bit >> 6;
            let off = (bit & 63) as u32;
            let lo = words[word] >> off;
            let hi = (words[word + 1] << 1) << (63 - off);
            out_block[j] = ((lo | hi) & mask).wrapping_add(base_u) as i64;
        }
    }
}

/// Convenience: frame, fuse-pack, and return `(base, width, packed)`.
pub fn ffor(input: &[i64]) -> (i64, usize, Vec<u64>) {
    let (base, width) = frame_of(input);
    let packed = ffor_pack(input, base, width);
    (base, width, packed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bitpack;

    fn vec_of(f: impl Fn(usize) -> i64) -> Vec<i64> {
        (0..VECTOR_SIZE).map(f).collect()
    }

    #[test]
    fn roundtrip_small_range() {
        let input = vec_of(|i| 1000 + (i as i64 % 37));
        let (base, width, packed) = ffor(&input);
        assert_eq!(base, 1000);
        assert_eq!(width, 6); // 36 needs 6 bits
        let mut out = vec![0i64; VECTOR_SIZE];
        ffor_unpack(&packed, base, width, &mut out);
        assert_eq!(out, input);
    }

    #[test]
    fn roundtrip_negative_values() {
        let input = vec_of(|i| -5000 + (i as i64 * 3));
        let (base, width, packed) = ffor(&input);
        assert_eq!(base, -5000);
        let mut out = vec![0i64; VECTOR_SIZE];
        ffor_unpack(&packed, base, width, &mut out);
        assert_eq!(out, input);
    }

    #[test]
    fn roundtrip_full_i64_range() {
        let mut input = vec_of(|i| (i as i64).wrapping_mul(0x5DEE_CE66_D1CE_4E85));
        input[0] = i64::MIN;
        input[1] = i64::MAX;
        let (base, width, packed) = ffor(&input);
        assert_eq!(width, 64);
        let mut out = vec![0i64; VECTOR_SIZE];
        ffor_unpack(&packed, base, width, &mut out);
        assert_eq!(out, input);
    }

    #[test]
    fn constant_vector_needs_zero_bits() {
        let input = vec![42i64; VECTOR_SIZE];
        let (base, width, packed) = ffor(&input);
        assert_eq!((base, width), (42, 0));
        assert_eq!(packed.len(), 1);
        let mut out = vec![0i64; VECTOR_SIZE];
        ffor_unpack(&packed, base, width, &mut out);
        assert_eq!(out, input);
    }

    #[test]
    fn fused_and_unfused_agree() {
        let input = vec_of(|i| 7_000_000 + (i as i64 * i as i64 % 9999));
        let (base, width) = frame_of(&input);
        let fused = ffor_pack(&input, base, width);

        let mut residuals = vec![0u64; VECTOR_SIZE];
        for_encode(&input, base, &mut residuals);
        let unfused = bitpack::pack(&residuals, width);
        assert_eq!(fused, unfused);

        let mut out_fused = vec![0i64; VECTOR_SIZE];
        ffor_unpack(&fused, base, width, &mut out_fused);

        let mut unpacked = vec![0u64; VECTOR_SIZE];
        bitpack::unpack(&unfused, width, &mut unpacked);
        let mut out_unfused = vec![0i64; VECTOR_SIZE];
        for_decode(&unpacked, base, &mut out_unfused);

        assert_eq!(out_fused, input);
        assert_eq!(out_unfused, input);
    }
}
