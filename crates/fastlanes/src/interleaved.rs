//! Lane-transposed ("interleaved") bit-packing — the layout family FastLanes
//! proper uses, provided as an alternative to the default word-sequential
//! layout of [`crate::bitpack`].
//!
//! The 1024 values are viewed as 64 rows × 16 lanes (value `i` lives in lane
//! `i % 16`, row `i / 16`). Each lane packs its 64 values independently;
//! packed words are stored lane-major per word-row (`word_row * 16 + lane`),
//! so at every step of the unpack loop **all 16 lanes use identical shift
//! amounts** — the textbook SIMD-friendly arrangement (two AVX-512 registers
//! cover a whole lane row).
//!
//! The `layout_ablation` bench compares this against the sequential layout;
//! compressed size is identical by construction (same width, same word
//! count), only the access pattern differs.

use crate::dispatch::{width_mask, with_width, WidthKernel};
use crate::{packed_len, VECTOR_SIZE};

/// Number of lanes (values interleave across lanes round-robin).
pub const LANES: usize = 16;
/// Rows per lane.
pub const ROWS: usize = VECTOR_SIZE / LANES;

/// Packs 1024 values into the interleaved layout (same size as
/// [`crate::bitpack::pack`]: `packed_len(width)` words).
pub fn pack(input: &[u64], width: usize) -> Vec<u64> {
    assert_eq!(input.len(), VECTOR_SIZE);
    let mut out = vec![0u64; packed_len(width)];
    with_width(width, PackKernel { input, out: &mut out });
    out
}

/// Unpacks an interleaved vector.
pub fn unpack(packed: &[u64], width: usize, out: &mut [u64]) {
    assert_eq!(out.len(), VECTOR_SIZE);
    assert!(packed.len() >= packed_len(width));
    with_width(width, UnpackKernel { packed, out });
}

struct PackKernel<'a> {
    input: &'a [u64],
    out: &'a mut [u64],
}

impl WidthKernel for PackKernel<'_> {
    type Out = ();
    fn run<const W: usize>(self) {
        pack_const::<W>(self.input, self.out);
    }
}

struct UnpackKernel<'a> {
    packed: &'a [u64],
    out: &'a mut [u64],
}

impl WidthKernel for UnpackKernel<'_> {
    type Out = ();
    fn run<const W: usize>(self) {
        unpack_const::<W>(self.packed, self.out);
    }
}

/// Monomorphized interleaved pack: 16 parallel lane accumulators.
#[inline]
pub fn pack_const<const W: usize>(input: &[u64], out: &mut [u64]) {
    if W == 0 {
        return;
    }
    if W == 64 {
        out[..VECTOR_SIZE].copy_from_slice(&input[..VECTOR_SIZE]);
        return;
    }
    let mask = width_mask::<W>();
    let mut acc = [0u64; LANES];
    let mut filled: usize = 0;
    let mut word_row = 0usize;
    for row in 0..ROWS {
        let values = &input[row * LANES..row * LANES + LANES];
        let room = 64 - filled;
        if W <= room {
            for l in 0..LANES {
                acc[l] |= (values[l] & mask) << filled;
            }
            filled += W;
            if filled == 64 {
                out[word_row * LANES..word_row * LANES + LANES].copy_from_slice(&acc);
                acc = [0; LANES];
                word_row += 1;
                filled = 0;
            }
        } else {
            // Split across the word boundary — same split for every lane.
            for l in 0..LANES {
                acc[l] |= (values[l] & mask) << filled;
            }
            out[word_row * LANES..word_row * LANES + LANES].copy_from_slice(&acc);
            word_row += 1;
            let spill = W - room;
            for l in 0..LANES {
                acc[l] = (values[l] & mask) >> room;
            }
            filled = spill;
        }
    }
    if filled > 0 {
        out[word_row * LANES..word_row * LANES + LANES].copy_from_slice(&acc);
    }
}

/// Monomorphized interleaved unpack: identical shifts across all 16 lanes at
/// every step.
#[inline]
// ANALYZER-ALLOW(no-panic): fixed 1024-lane FastLanes geometry — callers
// size `packed` via packed_len::<W>() (16*W words plus the pad word) and
// `out` holds VECTOR_SIZE lanes; shift casts are bounded by the word width.
pub fn unpack_const<const W: usize>(packed: &[u64], out: &mut [u64]) {
    if W == 0 {
        out[..VECTOR_SIZE].fill(0);
        return;
    }
    if W == 64 {
        out[..VECTOR_SIZE].copy_from_slice(&packed[..VECTOR_SIZE]);
        return;
    }
    let mask = width_mask::<W>();
    for row in 0..ROWS {
        let bit = row * W;
        let word_row = bit >> 6;
        let off = (bit & 63) as u32;
        let lo = &packed[word_row * LANES..word_row * LANES + LANES];
        let hi_start = (word_row + 1) * LANES;
        let out_row = &mut out[row * LANES..row * LANES + LANES];
        if off as usize + W <= 64 {
            for l in 0..LANES {
                out_row[l] = (lo[l] >> off) & mask;
            }
        } else {
            let hi = &packed[hi_start..hi_start + LANES];
            for l in 0..LANES {
                out_row[l] = ((lo[l] >> off) | ((hi[l] << 1) << (63 - off))) & mask;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(width: usize) -> Vec<u64> {
        let mask = if width == 64 {
            u64::MAX
        } else if width == 0 {
            0
        } else {
            (1 << width) - 1
        };
        (0..VECTOR_SIZE as u64).map(|i| i.wrapping_mul(0xD134_2543_DE82_EF95) & mask).collect()
    }

    #[test]
    fn roundtrip_every_width() {
        for width in 0..=64 {
            let input = sample(width);
            let packed = pack(&input, width);
            let mut out = vec![0u64; VECTOR_SIZE];
            unpack(&packed, width, &mut out);
            assert_eq!(out, input, "width {width}");
        }
    }

    #[test]
    fn same_size_as_sequential_layout() {
        for width in [1usize, 7, 13, 33, 52] {
            let input = sample(width);
            let inter = pack(&input, width);
            let seq = crate::bitpack::pack(&input, width);
            assert_eq!(inter.len(), seq.len(), "width {width}");
        }
    }

    #[test]
    fn layouts_differ_but_decode_identically() {
        let input = sample(11);
        let inter = pack(&input, 11);
        let seq = crate::bitpack::pack(&input, 11);
        assert_ne!(inter, seq, "layouts should actually interleave");
        let mut a = vec![0u64; VECTOR_SIZE];
        let mut b = vec![0u64; VECTOR_SIZE];
        unpack(&inter, 11, &mut a);
        crate::bitpack::unpack(&seq, 11, &mut b);
        assert_eq!(a, b);
    }

    #[test]
    fn max_values_survive() {
        for width in [1usize, 31, 63] {
            let max = (1u64 << width) - 1;
            let input = vec![max; VECTOR_SIZE];
            let packed = pack(&input, width);
            let mut out = vec![0u64; VECTOR_SIZE];
            unpack(&packed, width, &mut out);
            assert!(out.iter().all(|&v| v == max), "width {width}");
        }
    }
}
