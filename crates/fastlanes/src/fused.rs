//! Fused compressed-domain scan: unpack + FOR-add + predicate + aggregate in
//! a single pass over the interleaved layout, never materializing the
//! 1024-value vector.
//!
//! This is the FastLanes-style answer to "decompress, then filter": the scan
//! kernel walks the packed words directly, reconstructs each value in
//! registers, tests the range predicate, and folds SUM/COUNT/MIN/MAX plus a
//! selection bitmap — the decompressed vector never touches memory. Integer
//! aggregation is exact and associative, so the per-lane accumulator layout
//! (which is what keeps the loop auto-vectorizable) produces bit-identical
//! results to a scalar unpack-then-scan.
//!
//! The float-domain analogue (where FP addition is *not* associative and the
//! accumulation order is part of the contract) lives in `alp::decode`; this
//! module provides the integer substrate and the bitmap conventions shared by
//! both: bit `i` of word `i / 64` describes value `i`.

use crate::dispatch::{width_mask, with_width, WidthKernel};
use crate::interleaved::{LANES, ROWS};
use crate::{packed_len, VECTOR_SIZE};

/// Selection-bitmap words per vector (bit `i` of word `i / 64` ⇔ value `i`
/// matched the predicate).
pub const MATCH_WORDS: usize = VECTOR_SIZE / 64;

/// Integer aggregates over the values matching `lo..=hi`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScanAgg {
    /// Wrapping sum of matching values.
    pub sum: i64,
    /// Number of matching values.
    pub count: usize,
    /// Minimum matching value (`i64::MAX` when `count == 0`).
    pub min: i64,
    /// Maximum matching value (`i64::MIN` when `count == 0`).
    pub max: i64,
}

impl ScanAgg {
    /// Identity element: no matches yet.
    pub const EMPTY: Self = Self { sum: 0, count: 0, min: i64::MAX, max: i64::MIN };
}

/// Fused FFOR scan over one interleaved 1024-value vector: unpacks `packed`,
/// adds `base` back, tests `lo <= v <= hi`, and aggregates the matches — all
/// in one loop, filling `matches` with the selection bitmap.
pub fn ffor_unpack_cmp_agg(
    packed: &[u64],
    base: i64,
    width: usize,
    lo: i64,
    hi: i64,
    matches: &mut [u64; MATCH_WORDS],
) -> ScanAgg {
    assert!(packed.len() >= packed_len(width));
    with_width(width, FusedScan { packed, base, lo, hi, matches })
}

struct FusedScan<'a> {
    packed: &'a [u64],
    base: i64,
    lo: i64,
    hi: i64,
    matches: &'a mut [u64; MATCH_WORDS],
}

impl WidthKernel for FusedScan<'_> {
    type Out = ScanAgg;
    fn run<const W: usize>(self) -> ScanAgg {
        ffor_unpack_cmp_agg_const::<W>(self.packed, self.base, self.lo, self.hi, self.matches)
    }
}

/// Monomorphized fused scan. Public for fixed-width callers downstream.
#[inline]
#[allow(clippy::needless_range_loop)] // affine-index form the vectorizer needs
                                      // ANALYZER-ALLOW(no-panic): fixed 1024-lane FastLanes geometry — callers
                                      // size `packed` via packed_len(width), row/lane/word indices are bounded
                                      // at compile time, and shift casts are bounded by the word width.
pub fn ffor_unpack_cmp_agg_const<const W: usize>(
    packed: &[u64],
    base: i64,
    lo: i64,
    hi: i64,
    matches: &mut [u64; MATCH_WORDS],
) -> ScanAgg {
    if W == 0 {
        // Every value is `base`: one comparison decides the whole vector.
        let hit = base >= lo && base <= hi;
        matches.fill(if hit { u64::MAX } else { 0 });
        return if hit {
            ScanAgg {
                sum: base.wrapping_mul(VECTOR_SIZE as i64),
                count: VECTOR_SIZE,
                min: base,
                max: base,
            }
        } else {
            ScanAgg::EMPTY
        };
    }
    let mask = width_mask::<W>();
    let base_u = base as u64;
    // Per-lane accumulators keep the reduction auto-vectorizable; integer
    // arithmetic is associative, so folding lanes at the end is bit-identical
    // to a sequential scan. Row-major traversal *is* value order (value `i`
    // lives in row `i / 16`, lane `i % 16`), so four rows fill one bitmap word.
    let mut sums = [0i64; LANES];
    let mut counts = [0u32; LANES];
    let mut mins = [i64::MAX; LANES];
    let mut maxs = [i64::MIN; LANES];
    let mut tmp = [0i64; LANES];
    let mut word_acc: u64 = 0;
    for row in 0..ROWS {
        let bit = row * W;
        let word_row = bit >> 6;
        let off = (bit & 63) as u32;
        let lo_words = &packed[word_row * LANES..word_row * LANES + LANES];
        if off as usize + W <= 64 {
            for l in 0..LANES {
                tmp[l] = ((lo_words[l] >> off) & mask).wrapping_add(base_u) as i64;
            }
        } else {
            let hi_start = (word_row + 1) * LANES;
            let hi_words = &packed[hi_start..hi_start + LANES];
            for l in 0..LANES {
                let r = ((lo_words[l] >> off) | ((hi_words[l] << 1) << (63 - off))) & mask;
                tmp[l] = r.wrapping_add(base_u) as i64;
            }
        }
        for l in 0..LANES {
            let v = tmp[l];
            let hit = v >= lo && v <= hi;
            sums[l] = sums[l].wrapping_add(if hit { v } else { 0 });
            counts[l] += hit as u32;
            mins[l] = if hit && v < mins[l] { v } else { mins[l] };
            maxs[l] = if hit && v > maxs[l] { v } else { maxs[l] };
            word_acc |= (hit as u64) << ((row & 3) * LANES + l);
        }
        if row & 3 == 3 {
            matches[row >> 2] = word_acc;
            word_acc = 0;
        }
    }
    let mut agg = ScanAgg::EMPTY;
    for l in 0..LANES {
        agg.sum = agg.sum.wrapping_add(sums[l]);
        agg.count += counts[l] as usize;
        agg.min = agg.min.min(mins[l]);
        agg.max = agg.max.max(maxs[l]);
    }
    agg
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interleaved;

    /// Pseudo-random residuals masked to `width` bits.
    fn residuals(width: usize) -> Vec<u64> {
        let mask = if width == 64 {
            u64::MAX
        } else if width == 0 {
            0
        } else {
            (1 << width) - 1
        };
        (0..VECTOR_SIZE as u64).map(|i| i.wrapping_mul(0xD134_2543_DE82_EF95) & mask).collect()
    }

    fn reference(values: &[i64], lo: i64, hi: i64) -> (ScanAgg, Vec<u64>) {
        let mut agg = ScanAgg::EMPTY;
        let mut words = vec![0u64; MATCH_WORDS];
        for (i, &v) in values.iter().enumerate() {
            if v >= lo && v <= hi {
                agg.sum = agg.sum.wrapping_add(v);
                agg.count += 1;
                agg.min = agg.min.min(v);
                agg.max = agg.max.max(v);
                words[i / 64] |= 1u64 << (i % 64);
            }
        }
        (agg, words)
    }

    #[test]
    fn matches_unpack_then_scan_every_width() {
        let base = -987_654i64;
        for width in 0..=64usize {
            let res = residuals(width);
            let values: Vec<i64> =
                res.iter().map(|&r| r.wrapping_add(base as u64) as i64).collect();
            let packed = interleaved::pack(&res, width);
            // Pick bounds that select roughly the middle of the range.
            let mut sorted = values.clone();
            sorted.sort_unstable();
            let (lo, hi) = (sorted[VECTOR_SIZE / 4], sorted[3 * VECTOR_SIZE / 4]);
            let mut words = [0u64; MATCH_WORDS];
            let agg = ffor_unpack_cmp_agg(&packed, base, width, lo, hi, &mut words);
            let (want_agg, want_words) = reference(&values, lo, hi);
            assert_eq!(agg, want_agg, "width {width}");
            assert_eq!(&words[..], &want_words[..], "width {width}");
        }
    }

    #[test]
    fn empty_and_full_selections() {
        let res = residuals(13);
        let base = 42i64;
        let values: Vec<i64> = res.iter().map(|&r| r.wrapping_add(base as u64) as i64).collect();
        let packed = interleaved::pack(&res, 13);

        let mut words = [u64::MAX; MATCH_WORDS];
        let none = ffor_unpack_cmp_agg(&packed, base, 13, 1, 0, &mut words);
        assert_eq!(none, ScanAgg::EMPTY);
        assert!(words.iter().all(|&w| w == 0));

        let all = ffor_unpack_cmp_agg(&packed, base, 13, i64::MIN, i64::MAX, &mut words);
        assert_eq!(all.count, VECTOR_SIZE);
        assert_eq!(all.sum, values.iter().fold(0i64, |a, &v| a.wrapping_add(v)));
        assert!(words.iter().all(|&w| w == u64::MAX));
    }

    #[test]
    fn zero_width_constant_vector() {
        let packed = interleaved::pack(&vec![0u64; VECTOR_SIZE], 0);
        let mut words = [0u64; MATCH_WORDS];
        let hit = ffor_unpack_cmp_agg(&packed, 7, 0, 0, 10, &mut words);
        assert_eq!(
            hit,
            ScanAgg { sum: 7 * VECTOR_SIZE as i64, count: VECTOR_SIZE, min: 7, max: 7 }
        );
        assert!(words.iter().all(|&w| w == u64::MAX));
        let miss = ffor_unpack_cmp_agg(&packed, 7, 0, 8, 10, &mut words);
        assert_eq!(miss, ScanAgg::EMPTY);
        assert!(words.iter().all(|&w| w == 0));
    }

    #[test]
    fn selection_bitmap_is_in_value_order() {
        // Values 0..1024; select exactly [100, 163] — one fully-set word span.
        let res: Vec<u64> = (0..VECTOR_SIZE as u64).collect();
        let packed = interleaved::pack(&res, 10);
        let mut words = [0u64; MATCH_WORDS];
        let agg = ffor_unpack_cmp_agg(&packed, 0, 10, 100, 163, &mut words);
        assert_eq!(agg.count, 64);
        assert_eq!((agg.min, agg.max), (100, 163));
        for (i, &w) in words.iter().enumerate() {
            let mut want = 0u64;
            for b in 0..64 {
                let v = (i * 64 + b) as i64;
                if (100..=163).contains(&v) {
                    want |= 1 << b;
                }
            }
            assert_eq!(w, want, "word {i}");
        }
    }
}
