//! Dictionary encoding over `u64` symbols (callers pass float bit patterns to
//! keep NaN/-0.0 exact). Codes are dense `u32`s assigned in first-seen order;
//! pack them with [`crate::bitpack`] at `bits_needed(dict_len - 1)` bits.

use std::collections::HashMap;

use crate::bits_needed;

/// A dictionary-encoded sequence: `values[i] == dict[codes[i]]`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DictEncoded {
    /// Distinct symbols in first-occurrence order.
    pub dict: Vec<u64>,
    /// Per-value index into `dict`.
    pub codes: Vec<u32>,
}

impl DictEncoded {
    /// Builds the dictionary and code stream for `input`.
    pub fn encode(input: &[u64]) -> Self {
        let mut map: HashMap<u64, u32> = HashMap::new();
        let mut dict = Vec::new();
        let mut codes = Vec::with_capacity(input.len());
        for &v in input {
            let code = *map.entry(v).or_insert_with(|| {
                dict.push(v);
                (dict.len() - 1) as u32
            });
            codes.push(code);
        }
        Self { dict, codes }
    }

    /// Reconstructs the original sequence.
    // ANALYZER-ALLOW(no-panic): codes are produced by encode() and always
    // index this encoder's own dictionary.
    pub fn decode(&self) -> Vec<u64> {
        self.codes.iter().map(|&c| self.dict[c as usize]).collect()
    }

    /// Bits per code when packed.
    pub fn code_width(&self) -> usize {
        bits_needed(self.dict.len().saturating_sub(1) as u64)
    }

    /// Estimated compressed size in bits: packed codes + raw dictionary.
    pub fn estimated_bits(&self) -> usize {
        self.codes.len() * self.code_width() + self.dict.len() * 64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_with_repeats() {
        let input = vec![5u64, 5, 7, 5, 9, 7];
        let e = DictEncoded::encode(&input);
        assert_eq!(e.dict, vec![5, 7, 9]);
        assert_eq!(e.codes, vec![0, 0, 1, 0, 2, 1]);
        assert_eq!(e.decode(), input);
    }

    #[test]
    fn code_width_grows_with_cardinality() {
        let one = DictEncoded::encode(&[1, 1, 1]);
        assert_eq!(one.code_width(), 0);
        let two = DictEncoded::encode(&[1, 2]);
        assert_eq!(two.code_width(), 1);
        let many = DictEncoded::encode(&(0..300).collect::<Vec<u64>>());
        assert_eq!(many.code_width(), 9);
    }

    #[test]
    fn empty_input() {
        let e = DictEncoded::encode(&[]);
        assert!(e.dict.is_empty() && e.codes.is_empty());
        assert!(e.decode().is_empty());
    }

    #[test]
    fn estimated_bits_favours_repetitive_data() {
        let repetitive = DictEncoded::encode(&vec![1u64; 4096]);
        let distinct = DictEncoded::encode(&(0..4096).collect::<Vec<u64>>());
        assert!(repetitive.estimated_bits() < distinct.estimated_bits());
    }
}
