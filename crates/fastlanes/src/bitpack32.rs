//! Native `u32` bit-packing (widths `0..=32`) over 1024-value vectors.
//!
//! The `u64` kernels in [`crate::bitpack`] serve 32-bit data correctly but
//! waste half of every lane; 32-bit pipelines (ALP for `f32`, packed
//! dictionary codes, PDE exponents) get twice the values per SIMD register
//! from a native kernel. The `codec_speed`/`layout_ablation` benches compare
//! the two.
//!
//! Layout mirrors the 64-bit kernels: 32 blocks of 32 values, each block
//! filling exactly `W` consecutive `u32` words, LSB-first.

use crate::dispatch::{with_width, WidthKernel};
use crate::VECTOR_SIZE;

/// Words (u32) a packed 1024-value vector of `width` bits occupies, including
/// one pad word.
#[inline]
pub const fn packed_len32(width: usize) -> usize {
    width * (VECTOR_SIZE / 32) + 1
}

/// Mask with the low `W` bits set (u32 domain).
#[inline]
const fn mask32<const W: usize>() -> u32 {
    if W >= 32 {
        u32::MAX
    } else if W == 0 {
        0
    } else {
        (1u32 << W) - 1
    }
}

/// Packs 1024 `u32` values at `width` bits each.
///
/// # Panics
/// Panics if `width > 32` or `input.len() != 1024`.
pub fn pack(input: &[u32], width: usize) -> Vec<u32> {
    assert!(width <= 32, "u32 kernels support widths 0..=32");
    assert_eq!(input.len(), VECTOR_SIZE);
    let mut out = vec![0u32; packed_len32(width)];
    with_width(width, Pack32 { input, out: &mut out });
    out
}

/// Unpacks a 1024-value `u32` vector.
pub fn unpack(packed: &[u32], width: usize, out: &mut [u32]) {
    assert!(width <= 32);
    assert_eq!(out.len(), VECTOR_SIZE);
    assert!(packed.len() >= packed_len32(width));
    with_width(width, Unpack32 { packed, out });
}

struct Pack32<'a> {
    input: &'a [u32],
    out: &'a mut [u32],
}

impl WidthKernel for Pack32<'_> {
    type Out = ();
    fn run<const W: usize>(self) {
        pack_const::<W>(self.input, self.out);
    }
}

struct Unpack32<'a> {
    packed: &'a [u32],
    out: &'a mut [u32],
}

impl WidthKernel for Unpack32<'_> {
    type Out = ();
    fn run<const W: usize>(self) {
        unpack_const::<W>(self.packed, self.out);
    }
}

/// Monomorphized u32 pack (blocks of 32 values → exactly `W` words).
#[inline]
pub fn pack_const<const W: usize>(input: &[u32], out: &mut [u32]) {
    if W == 0 {
        return;
    }
    if W == 32 {
        out[..VECTOR_SIZE].copy_from_slice(&input[..VECTOR_SIZE]);
        return;
    }
    let mask = mask32::<W>();
    for block in 0..VECTOR_SIZE / 32 {
        let values = &input[block * 32..block * 32 + 32];
        let words = &mut out[block * W..block * W + W];
        let mut acc: u32 = 0;
        let mut filled: usize = 0;
        let mut word = 0usize;
        for &raw in values.iter() {
            let v = raw & mask;
            acc |= v << filled;
            filled += W;
            if filled >= 32 {
                words[word] = acc;
                word += 1;
                filled -= 32;
                acc = if filled > 0 { v >> (W - filled) } else { 0 };
            }
        }
        debug_assert_eq!(filled, 0);
    }
}

/// Monomorphized u32 unpack (branch-free; reads the pad word).
#[inline]
#[allow(clippy::needless_range_loop)] // affine-index form the vectorizer needs
                                      // ANALYZER-ALLOW(no-panic): fixed 1024-lane FastLanes geometry — callers
                                      // size `packed` via packed_len::<W>() (16*W words plus the pad word) and
                                      // `out` holds VECTOR_SIZE lanes; shift casts are bounded by the word width.
pub fn unpack_const<const W: usize>(packed: &[u32], out: &mut [u32]) {
    if W == 0 {
        out[..VECTOR_SIZE].fill(0);
        return;
    }
    if W == 32 {
        out[..VECTOR_SIZE].copy_from_slice(&packed[..VECTOR_SIZE]);
        return;
    }
    let mask = mask32::<W>();
    for block in 0..VECTOR_SIZE / 32 {
        let words = &packed[block * W..block * W + W + 1];
        let out_block = &mut out[block * 32..block * 32 + 32];
        for j in 0..32 {
            let bit = j * W;
            let word = bit >> 5;
            let off = (bit & 31) as u32;
            let lo = words[word] >> off;
            let hi = (words[word + 1] << 1) << (31 - off);
            out_block[j] = (lo | hi) & mask;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(width: usize) -> Vec<u32> {
        let mask = if width == 32 {
            u32::MAX
        } else if width == 0 {
            0
        } else {
            (1u32 << width) - 1
        };
        (0..VECTOR_SIZE as u32).map(|i| i.wrapping_mul(0x9E37_79B1) & mask).collect()
    }

    #[test]
    fn roundtrip_every_width() {
        for width in 0..=32 {
            let input = sample(width);
            let packed = pack(&input, width);
            assert_eq!(packed.len(), packed_len32(width));
            let mut out = vec![0u32; VECTOR_SIZE];
            unpack(&packed, width, &mut out);
            assert_eq!(out, input, "width {width}");
        }
    }

    #[test]
    fn agrees_with_u64_kernel_semantics() {
        for width in [1usize, 5, 11, 17, 23, 31] {
            let input = sample(width);
            let wide: Vec<u64> = input.iter().map(|&v| v as u64).collect();
            let packed64 = crate::bitpack::pack(&wide, width);
            let mut out64 = vec![0u64; VECTOR_SIZE];
            crate::bitpack::unpack(&packed64, width, &mut out64);
            let packed32 = pack(&input, width);
            let mut out32 = vec![0u32; VECTOR_SIZE];
            unpack(&packed32, width, &mut out32);
            assert!(out64.iter().zip(&out32).all(|(&a, &b)| a == b as u64), "width {width}");
            // Native kernel halves the payload footprint.
            assert!(packed32.len() * 4 < packed64.len() * 8);
        }
    }

    #[test]
    #[should_panic]
    fn rejects_width_over_32() {
        pack(&vec![0u32; VECTOR_SIZE], 33);
    }

    #[test]
    fn max_values_survive() {
        for width in [1usize, 16, 32] {
            let max = if width == 32 { u32::MAX } else { (1 << width) - 1 };
            let input = vec![max; VECTOR_SIZE];
            let packed = pack(&input, width);
            let mut out = vec![0u32; VECTOR_SIZE];
            unpack(&packed, width, &mut out);
            assert!(out.iter().all(|&v| v == max), "width {width}");
        }
    }
}
