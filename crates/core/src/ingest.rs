//! `alp_core::ingest` — the workspace's streaming-ingestion surface.
//!
//! Mirrors [`crate::par`]: the machinery lives in `alp` (the serial
//! [`ColumnWriter`] in `alp::stream`, the pipelined
//! [`PipelinedColumnWriter`] in `alp::pipeline`) and is re-exported here so
//! the CLI, the benches, and downstream engines import ingestion through one
//! module, next to a helper that picks the right mode from resolved knobs.
//!
//! Codecs advertising [`Capabilities::streaming_ingest`](crate::Capabilities)
//! (today: ALP) can ingest unbounded columns through this surface; everything
//! else still goes through the materializing [`ColumnCodec`](crate::ColumnCodec)
//! path.

use std::io::Write;

pub use alp::pipeline::{
    resolve_pipeline_depth, IngestError, PipelineConfig, PipelinedColumnWriter,
    DEFAULT_PIPELINE_DEPTH, PIPELINE_DEPTH_ENV,
};
pub use alp::stream::{ColumnReader, ColumnWriter, StreamError, StreamFooter, StreamSummary};
pub use alp::ParityConfig;

use alp::sampler::ConfigError;
use alp::AlpFloat;

/// A pipelined column writer from resolved knobs: `threads` and `depth`
/// follow the same explicit-request → env (`ALP_THREADS`,
/// `ALP_PIPELINE_DEPTH`) → default chain as the rest of the workspace.
/// `threads <= 1` (after resolution) yields the serial inline path with the
/// identical on-disk stream.
pub fn pipelined_writer<F: AlpFloat, W: Write>(
    sink: W,
    threads: Option<usize>,
    depth: Option<usize>,
) -> PipelinedColumnWriter<F, W> {
    PipelinedColumnWriter::new(sink, PipelineConfig::resolve(threads, depth))
}

/// [`pipelined_writer`] with XOR erasure protection: one parity frame per
/// `group_size` row-group frames, making any single damaged frame per group
/// reconstructible on read. Returns [`ConfigError`] when the group size is
/// out of range (zero, or more than 255).
pub fn pipelined_writer_with_parity<F: AlpFloat, W: Write>(
    sink: W,
    threads: Option<usize>,
    depth: Option<usize>,
    group_size: usize,
) -> Result<PipelinedColumnWriter<F, W>, ConfigError> {
    PipelinedColumnWriter::with_parity(
        sink,
        PipelineConfig::resolve(threads, depth),
        ParityConfig { group_size },
    )
}
