//! Registry-keyed storage envelope.
//!
//! One frame works for every registered codec, replacing per-codec framing:
//!
//! ```text
//! magic "ALPC" | id_len: u8 | id bytes | count: u64 LE | payload_len: u64 LE
//!   | xxh64(payload): u64 LE | payload
//! ```
//!
//! The codec id is stored by name, so a reader needs no out-of-band schema to
//! pick the right decoder — it looks the id up in the [`Registry`] — and the
//! payload checksum (same xxh64 as ALP's row-group format) rejects bit rot
//! before any decoder sees the bytes.

use crate::codec::ColumnCodec;
use crate::error::CoreError;
use crate::registry::Registry;
use crate::scratch::Scratch;

/// Frame magic: ALP container.
pub const MAGIC: [u8; 4] = *b"ALPC";

/// Seed of the payload checksum (distinct from ALP's row-group seed so the
/// two integrity domains cannot be confused).
const CHECKSUM_SEED: u64 = 0xC0_17_A1_9E;

/// Fixed bytes before the payload, excluding the variable-length id.
const FIXED_HEADER: usize = MAGIC.len() + 1 + 8 + 8 + 8;

/// Wraps `codec`-compressed `data` in a self-describing checksummed frame.
///
/// Errs with [`CoreError::Unsupported`] for ratio-only codecs.
pub fn write_container(
    codec: &dyn ColumnCodec,
    data: &[f64],
    scratch: &mut Scratch,
) -> Result<Vec<u8>, CoreError> {
    let mut payload = std::mem::take(&mut scratch.stage);
    let result = codec.try_compress_into(data, &mut payload, scratch);
    let frame = result.map(|()| {
        let id = codec.id().as_bytes();
        debug_assert!(id.len() <= u8::MAX as usize, "registry ids are short");
        let mut out = Vec::with_capacity(FIXED_HEADER + id.len() + payload.len());
        out.extend_from_slice(&MAGIC);
        out.push(id.len() as u8);
        out.extend_from_slice(id);
        out.extend_from_slice(&(data.len() as u64).to_le_bytes());
        out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        out.extend_from_slice(&alp::hash::xxh64(&payload, CHECKSUM_SEED).to_le_bytes());
        out.extend_from_slice(&payload);
        out
    });
    scratch.stage = payload;
    frame
}

/// A parsed container header plus its payload slice.
pub struct Container<'a> {
    /// The codec the payload was written with, resolved from the registry.
    pub codec: &'static dyn ColumnCodec,
    /// Number of values in the column.
    pub count: usize,
    /// The checksum-verified compressed payload.
    pub payload: &'a [u8],
}

/// Pops a little-endian `u64` off the front of `bytes`.
fn read_u64_le(bytes: &[u8]) -> Option<(u64, &[u8])> {
    let (word, rest) = bytes.split_at_checked(8)?;
    let word: [u8; 8] = word.try_into().ok()?;
    Some((u64::from_le_bytes(word), rest))
}

/// Parses and integrity-checks a container frame without decompressing.
pub fn try_read_header(bytes: &[u8]) -> Result<Container<'_>, CoreError> {
    use alp::format::FormatError;
    let truncated = || CoreError::Format(FormatError::Truncated);
    let rest = bytes.strip_prefix(&MAGIC).ok_or(CoreError::Format(FormatError::BadMagic))?;
    let (&id_len, rest) = rest.split_first().ok_or_else(truncated)?;
    let (id, rest) = rest.split_at_checked(id_len as usize).ok_or_else(truncated)?;
    let id = core::str::from_utf8(id)
        .map_err(|_| CoreError::Format(FormatError::Corrupt("container id is not utf-8")))?;
    let (count, rest) = read_u64_le(rest).ok_or_else(truncated)?;
    let (payload_len, rest) = read_u64_le(rest).ok_or_else(truncated)?;
    let (stored, rest) = read_u64_le(rest).ok_or_else(truncated)?;
    if count > usize::MAX as u64 {
        return Err(truncated());
    }
    let payload =
        usize::try_from(payload_len).ok().and_then(|n| rest.get(..n)).ok_or_else(truncated)?;
    let computed = alp::hash::xxh64(payload, CHECKSUM_SEED);
    if computed != stored {
        return Err(CoreError::Format(FormatError::ChecksumMismatch {
            rowgroup: 0,
            stored,
            computed,
        }));
    }
    let codec = Registry::get(id).ok_or_else(|| CoreError::UnknownCodec(id.to_owned()))?;
    Ok(Container { codec, count: count as usize, payload })
}

/// Reads a container and decompresses its column into `out`.
///
/// Returns the codec the frame was written with.
pub fn try_read_container_into(
    bytes: &[u8],
    out: &mut Vec<f64>,
    scratch: &mut Scratch,
) -> Result<&'static dyn ColumnCodec, CoreError> {
    let container = try_read_header(bytes)?;
    container.codec.try_decompress_into(container.payload, container.count, out, scratch)?;
    Ok(container.codec)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<f64> {
        (0..2500).map(|i| (i as f64) * 0.01 - 7.25).collect()
    }

    #[test]
    fn roundtrips_every_serializable_codec() {
        let data = sample();
        let mut scratch = Scratch::new();
        let mut out = Vec::new();
        for codec in Registry::all().iter().filter(|c| !c.caps().ratio_only) {
            let frame = write_container(*codec, &data, &mut scratch).expect("compress");
            let found =
                try_read_container_into(&frame, &mut out, &mut scratch).expect("decompress");
            assert_eq!(found.id(), codec.id());
            assert_eq!(out, data, "{} container roundtrip", codec.id());
        }
    }

    #[test]
    fn ratio_only_codec_is_rejected_at_write() {
        let lwc = Registry::get("lwc-alp").expect("registered");
        let err = write_container(lwc, &sample(), &mut Scratch::new()).unwrap_err();
        assert!(matches!(err, CoreError::Unsupported { codec: "lwc-alp", .. }));
    }

    #[test]
    fn unknown_id_is_reported_by_name() {
        let mut scratch = Scratch::new();
        let alp_codec = Registry::get("alp").expect("registered");
        let mut frame = write_container(alp_codec, &sample(), &mut scratch).expect("compress");
        // Overwrite the stored id "alp" -> "zzz".
        frame[5..8].copy_from_slice(b"zzz");
        let err = try_read_container_into(&frame, &mut Vec::new(), &mut scratch)
            .map(|c| c.id())
            .unwrap_err();
        assert_eq!(err, CoreError::UnknownCodec("zzz".to_owned()));
    }

    #[test]
    fn payload_corruption_is_caught_by_checksum() {
        let mut scratch = Scratch::new();
        let alp_codec = Registry::get("alp").expect("registered");
        let mut frame = write_container(alp_codec, &sample(), &mut scratch).expect("compress");
        let last = frame.len() - 1;
        frame[last] ^= 0x40;
        let err = try_read_container_into(&frame, &mut Vec::new(), &mut scratch)
            .map(|c| c.id())
            .unwrap_err();
        assert!(
            matches!(err, CoreError::Format(alp::format::FormatError::ChecksumMismatch { .. })),
            "got {err:?}"
        );
    }

    #[test]
    fn truncation_never_panics() {
        let mut scratch = Scratch::new();
        let alp_codec = Registry::get("alp").expect("registered");
        let frame = write_container(alp_codec, &sample(), &mut scratch).expect("compress");
        for cut in [0, 1, 3, 4, 5, 10, 20, frame.len() / 2, frame.len() - 1] {
            assert!(
                try_read_container_into(&frame[..cut], &mut Vec::new(), &mut scratch).is_err(),
                "truncation at {cut} must err"
            );
        }
    }
}
