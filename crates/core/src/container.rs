//! Registry-keyed storage envelope.
//!
//! One frame works for every registered codec, replacing per-codec framing:
//!
//! ```text
//! magic "ALPC" | id_len: u8 | id bytes | count: u64 LE | payload_len: u64 LE
//!   | xxh64(payload): u64 LE | payload
//! ```
//!
//! The codec id is stored by name, so a reader needs no out-of-band schema to
//! pick the right decoder — it looks the id up in the [`Registry`] — and the
//! payload checksum (same xxh64 as ALP's row-group format) rejects bit rot
//! before any decoder sees the bytes.
//!
//! ## Parity section
//!
//! [`write_container_with_parity`] appends an optional erasure-protection
//! section *after* the payload — readers that predate it (including
//! [`try_read_header`], which only looks at `payload_len` bytes) skip it
//! transparently:
//!
//! ```text
//! "ALPP" | group_size:u8 | chunk_len:u32 | nchunks:u32
//!   | chunk xxh64s [nchunks * 8] | XOR blocks [ceil(nchunks/group_size) * chunk_len]
//!   | section xxh64
//! ```
//!
//! The payload is cut into `chunk_len`-byte chunks (the last possibly
//! short); per-chunk checksums *localize* damage the whole-payload checksum
//! can only detect, and one XOR block per `group_size` chunks reconstructs
//! any single damaged chunk per group ([`try_read_container_salvaged`]).
//! Truncation is not repairable — the section trails the payload and is cut
//! off with it — which is the honest trade for legacy compatibility.

use crate::codec::ColumnCodec;
use crate::error::CoreError;
use crate::registry::Registry;
use crate::scratch::Scratch;
use alp::format::FormatError;
use alp::ParityConfig;

/// Frame magic: ALP container.
pub const MAGIC: [u8; 4] = *b"ALPC";

/// Magic of the trailing parity section (shared with the stream's parity
/// frames — both spell "ALP parity").
pub const PARITY_MAGIC: [u8; 4] = *b"ALPP";

/// Seed of the payload checksum (distinct from ALP's row-group seed so the
/// two integrity domains cannot be confused).
const CHECKSUM_SEED: u64 = 0xC0_17_A1_9E;

/// Fixed bytes before the payload, excluding the variable-length id.
const FIXED_HEADER: usize = MAGIC.len() + 1 + 8 + 8 + 8;

/// Payload bytes per parity chunk — the localization granularity of repair.
const PARITY_CHUNK_LEN: usize = 4096;

/// Fixed bytes of the parity section before the chunk checksums.
const PARITY_FIXED: usize = PARITY_MAGIC.len() + 1 + 4 + 4;

/// Wraps `codec`-compressed `data` in a self-describing checksummed frame.
///
/// Errs with [`CoreError::Unsupported`] for ratio-only codecs.
pub fn write_container(
    codec: &dyn ColumnCodec,
    data: &[f64],
    scratch: &mut Scratch,
) -> Result<Vec<u8>, CoreError> {
    let mut payload = std::mem::take(&mut scratch.stage);
    let result = codec.try_compress_into(data, &mut payload, scratch);
    let frame = result.map(|()| {
        let id = codec.id().as_bytes();
        debug_assert!(id.len() <= u8::MAX as usize, "registry ids are short");
        let mut out = Vec::with_capacity(FIXED_HEADER + id.len() + payload.len());
        out.extend_from_slice(&MAGIC);
        out.push(id.len() as u8);
        out.extend_from_slice(id);
        out.extend_from_slice(&(data.len() as u64).to_le_bytes());
        out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        out.extend_from_slice(&alp::hash::xxh64(&payload, CHECKSUM_SEED).to_le_bytes());
        out.extend_from_slice(&payload);
        out
    });
    scratch.stage = payload;
    frame
}

/// [`write_container`], then appends the XOR parity section described in the
/// module docs: any single damaged `chunk_len`-byte payload chunk per
/// `parity.group_size` chunks becomes reconstructible through
/// [`try_read_container_salvaged`], at ~`1/group_size` space overhead.
/// Readers that predate parity ignore the section entirely.
///
/// Errs with [`CoreError::Config`] when the group size is out of range, or
/// [`CoreError::Unsupported`] for ratio-only codecs.
pub fn write_container_with_parity(
    codec: &dyn ColumnCodec,
    data: &[f64],
    scratch: &mut Scratch,
    parity: ParityConfig,
) -> Result<Vec<u8>, CoreError> {
    parity.validate()?;
    let mut frame = write_container(codec, data, scratch)?;
    let payload_start = FIXED_HEADER + codec.id().len();
    let section =
        build_parity_section(frame.get(payload_start..).unwrap_or(&[]), parity.group_size);
    frame.extend_from_slice(&section);
    Ok(frame)
}

/// Builds the trailing parity section over a payload (see the module docs).
fn build_parity_section(payload: &[u8], group_size: usize) -> Vec<u8> {
    let chunks: Vec<&[u8]> = payload.chunks(PARITY_CHUNK_LEN).collect();
    let ngroups = chunks.len().div_ceil(group_size.max(1));
    let mut out =
        Vec::with_capacity(PARITY_FIXED + chunks.len() * 8 + ngroups * PARITY_CHUNK_LEN + 8);
    out.extend_from_slice(&PARITY_MAGIC);
    out.push(group_size as u8);
    out.extend_from_slice(&(PARITY_CHUNK_LEN as u32).to_le_bytes());
    out.extend_from_slice(&(chunks.len() as u32).to_le_bytes());
    for chunk in &chunks {
        out.extend_from_slice(&alp::hash::xxh64(chunk, CHECKSUM_SEED).to_le_bytes());
    }
    for group in chunks.chunks(group_size.max(1)) {
        let mut block = vec![0u8; PARITY_CHUNK_LEN];
        for chunk in group {
            for (b, &x) in block.iter_mut().zip(*chunk) {
                *b ^= x;
            }
        }
        out.extend_from_slice(&block);
    }
    let sum = alp::hash::xxh64(&out, CHECKSUM_SEED);
    out.extend_from_slice(&sum.to_le_bytes());
    out
}

/// A parsed container header plus its payload slice.
pub struct Container<'a> {
    /// The codec the payload was written with, resolved from the registry.
    pub codec: &'static dyn ColumnCodec,
    /// Number of values in the column.
    pub count: usize,
    /// The checksum-verified compressed payload.
    pub payload: &'a [u8],
}

/// Pops a little-endian `u64` off the front of `bytes`.
fn read_u64_le(bytes: &[u8]) -> Option<(u64, &[u8])> {
    let (word, rest) = bytes.split_at_checked(8)?;
    let word: [u8; 8] = word.try_into().ok()?;
    Some((u64::from_le_bytes(word), rest))
}

/// Parses and integrity-checks a container frame without decompressing.
pub fn try_read_header(bytes: &[u8]) -> Result<Container<'_>, CoreError> {
    use alp::format::FormatError;
    let truncated = || CoreError::Format(FormatError::Truncated);
    let rest = bytes.strip_prefix(&MAGIC).ok_or(CoreError::Format(FormatError::BadMagic))?;
    let (&id_len, rest) = rest.split_first().ok_or_else(truncated)?;
    let (id, rest) = rest.split_at_checked(id_len as usize).ok_or_else(truncated)?;
    let id = core::str::from_utf8(id)
        .map_err(|_| CoreError::Format(FormatError::Corrupt("container id is not utf-8")))?;
    let (count, rest) = read_u64_le(rest).ok_or_else(truncated)?;
    let (payload_len, rest) = read_u64_le(rest).ok_or_else(truncated)?;
    let (stored, rest) = read_u64_le(rest).ok_or_else(truncated)?;
    if count > usize::MAX as u64 {
        return Err(truncated());
    }
    let payload =
        usize::try_from(payload_len).ok().and_then(|n| rest.get(..n)).ok_or_else(truncated)?;
    let computed = alp::hash::xxh64(payload, CHECKSUM_SEED);
    if computed != stored {
        return Err(CoreError::Format(FormatError::ChecksumMismatch {
            rowgroup: 0,
            stored,
            computed,
        }));
    }
    let codec = Registry::get(id).ok_or_else(|| CoreError::UnknownCodec(id.to_owned()))?;
    Ok(Container { codec, count: count as usize, payload })
}

/// Reads a container and decompresses its column into `out`.
///
/// Returns the codec the frame was written with.
pub fn try_read_container_into(
    bytes: &[u8],
    out: &mut Vec<f64>,
    scratch: &mut Scratch,
) -> Result<&'static dyn ColumnCodec, CoreError> {
    let container = try_read_header(bytes)?;
    container.codec.try_decompress_into(container.payload, container.count, out, scratch)?;
    Ok(container.codec)
}

/// Outcome of a salvage-with-repair container read.
pub struct ContainerSalvage {
    /// The codec the frame was written with.
    pub codec: &'static dyn ColumnCodec,
    /// Payload chunk indices that were XOR-reconstructed from the parity
    /// section (empty on a clean read). The decoded column is byte-identical
    /// to the uncorrupted original whenever this path returns `Ok`.
    pub repaired_chunks: Vec<usize>,
}

impl core::fmt::Debug for ContainerSalvage {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("ContainerSalvage")
            .field("codec", &self.codec.id())
            .field("repaired_chunks", &self.repaired_chunks)
            .finish()
    }
}

/// The trailing parity section, parsed and section-checksum-verified.
struct ParitySection<'a> {
    group_size: usize,
    chunk_len: usize,
    /// Stored per-chunk checksums, 8 bytes each.
    sums: &'a [u8],
    nchunks: usize,
    /// The XOR blocks, `chunk_len` bytes per group.
    blocks: &'a [u8],
}

/// Parses the parity section from the bytes trailing the payload. `None`
/// when absent, malformed, or failing its own checksum — the caller then
/// degrades to plain detection.
fn parse_parity_section(tail: &[u8]) -> Option<ParitySection<'_>> {
    let rest = tail.strip_prefix(&PARITY_MAGIC)?;
    let (&gs, rest) = rest.split_first()?;
    let group_size = gs as usize;
    let (chunk_len, rest) = {
        let (w, rest) = rest.split_at_checked(4)?;
        (u32::from_le_bytes(w.try_into().ok()?) as usize, rest)
    };
    let (nchunks, rest) = {
        let (w, rest) = rest.split_at_checked(4)?;
        (u32::from_le_bytes(w.try_into().ok()?) as usize, rest)
    };
    if group_size == 0 || chunk_len == 0 {
        return None;
    }
    let (sums, rest) = rest.split_at_checked(nchunks.checked_mul(8)?)?;
    let ngroups = nchunks.div_ceil(group_size);
    let (blocks, rest) = rest.split_at_checked(ngroups.checked_mul(chunk_len)?)?;
    let (stored, _) = read_u64_le(rest)?;
    let section_len = tail.len().checked_sub(rest.len())?;
    let computed = alp::hash::xxh64(tail.get(..section_len)?, CHECKSUM_SEED);
    if computed != stored {
        return None;
    }
    Some(ParitySection { group_size, chunk_len, sums, nchunks, blocks })
}

/// Stored checksum of chunk `i` (little-endian u64 at `i * 8`).
fn stored_chunk_sum(sums: &[u8], i: usize) -> Option<u64> {
    let at = i.checked_mul(8)?;
    Some(u64::from_le_bytes(sums.get(at..at + 8)?.try_into().ok()?))
}

/// [`try_read_container_into`] that *repairs* instead of merely detecting:
/// when the payload checksum fails and the frame carries a parity section
/// ([`write_container_with_parity`]), damaged chunks are localized by their
/// stored per-chunk checksums (fanned out over up to `threads` morsel
/// workers), XOR-reconstructed — at most one per parity group — and the
/// repaired payload is re-verified against the header checksum before
/// decoding. Two or more damaged chunks in one group, a damaged parity
/// section, or a truncated frame surface the original error: detection
/// without repair, exactly as [`try_read_container_into`] reports today.
pub fn try_read_container_salvaged(
    bytes: &[u8],
    out: &mut Vec<f64>,
    scratch: &mut Scratch,
    threads: usize,
) -> Result<ContainerSalvage, CoreError> {
    match try_read_container_into(bytes, out, scratch) {
        Ok(codec) => Ok(ContainerSalvage { codec, repaired_chunks: Vec::new() }),
        Err(original @ CoreError::Format(FormatError::ChecksumMismatch { .. })) => {
            try_repair_container(bytes, out, scratch, threads).ok_or(original)
        }
        Err(e) => Err(e),
    }
}

/// The repair half of [`try_read_container_salvaged`]: re-parses the header
/// leniently, reconstructs damaged payload chunks from the parity section,
/// and decodes the repaired payload. `None` when repair is impossible.
fn try_repair_container(
    bytes: &[u8],
    out: &mut Vec<f64>,
    scratch: &mut Scratch,
    threads: usize,
) -> Option<ContainerSalvage> {
    // Lenient header walk: the strict read already classified the failure as
    // a payload checksum mismatch, so the structural fields are parseable.
    let rest = bytes.strip_prefix(&MAGIC)?;
    let (&id_len, rest) = rest.split_first()?;
    let (id, rest) = rest.split_at_checked(id_len as usize)?;
    let id = core::str::from_utf8(id).ok()?;
    let (count, rest) = read_u64_le(rest)?;
    let (payload_len, rest) = read_u64_le(rest)?;
    let (stored, rest) = read_u64_le(rest)?;
    let payload_len = usize::try_from(payload_len).ok()?;
    let payload = rest.get(..payload_len)?;
    let section = parse_parity_section(rest.get(payload_len..)?)?;

    let chunks: Vec<&[u8]> = payload.chunks(section.chunk_len).collect();
    if chunks.len() != section.nchunks {
        return None;
    }
    // Localize damage: verify every chunk against its stored checksum.
    let verdicts = alp::par::map_morsels(
        threads,
        chunks.len(),
        || (),
        |(), m| {
            let chunk = chunks.get(m)?;
            let ok = stored_chunk_sum(section.sums, m)? == alp::hash::xxh64(chunk, CHECKSUM_SEED);
            Some(ok)
        },
    );
    let mut repaired_payload = payload.to_vec();
    let mut repaired_chunks = Vec::new();
    for (g, group) in verdicts.chunks(section.group_size).enumerate() {
        let damaged: Vec<usize> = group
            .iter()
            .enumerate()
            .filter(|(_, v)| !matches!(v, Some(true)))
            .map(|(j, _)| g * section.group_size + j)
            .collect();
        let Some(&victim) = damaged.first() else { continue };
        if damaged.len() != 1 {
            return None; // >= 2 damaged chunks in one group: beyond protection
        }
        let block_at = g.checked_mul(section.chunk_len)?;
        let mut block = section.blocks.get(block_at..block_at + section.chunk_len)?.to_vec();
        for i in (g * section.group_size..).take(group.len()) {
            if i == victim {
                continue;
            }
            for (b, &x) in block.iter_mut().zip(*chunks.get(i)?) {
                *b ^= x;
            }
        }
        let start = victim.checked_mul(section.chunk_len)?;
        let slot = repaired_payload.get_mut(start..)?;
        let take = slot.len().min(section.chunk_len);
        slot.get_mut(..take)?.copy_from_slice(block.get(..take)?);
        // The reconstruction must match the chunk's own stored checksum.
        if stored_chunk_sum(section.sums, victim)?
            != alp::hash::xxh64(repaired_payload.get(start..start + take)?, CHECKSUM_SEED)
        {
            return None;
        }
        repaired_chunks.push(victim);
    }
    // End-to-end proof: the repaired payload must match the header checksum.
    if alp::hash::xxh64(&repaired_payload, CHECKSUM_SEED) != stored {
        return None;
    }
    let codec = Registry::get(id)?;
    codec
        .try_decompress_into(&repaired_payload, usize::try_from(count).ok()?, out, scratch)
        .ok()?;
    Some(ContainerSalvage { codec, repaired_chunks })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<f64> {
        (0..2500).map(|i| (i as f64) * 0.01 - 7.25).collect()
    }

    #[test]
    fn roundtrips_every_serializable_codec() {
        let data = sample();
        let mut scratch = Scratch::new();
        let mut out = Vec::new();
        for codec in Registry::all().iter().filter(|c| !c.caps().ratio_only) {
            let frame = write_container(*codec, &data, &mut scratch).expect("compress");
            let found =
                try_read_container_into(&frame, &mut out, &mut scratch).expect("decompress");
            assert_eq!(found.id(), codec.id());
            assert_eq!(out, data, "{} container roundtrip", codec.id());
        }
    }

    #[test]
    fn ratio_only_codec_is_rejected_at_write() {
        let lwc = Registry::get("lwc-alp").expect("registered");
        let err = write_container(lwc, &sample(), &mut Scratch::new()).unwrap_err();
        assert!(matches!(err, CoreError::Unsupported { codec: "lwc-alp", .. }));
    }

    #[test]
    fn unknown_id_is_reported_by_name() {
        let mut scratch = Scratch::new();
        let alp_codec = Registry::get("alp").expect("registered");
        let mut frame = write_container(alp_codec, &sample(), &mut scratch).expect("compress");
        // Overwrite the stored id "alp" -> "zzz".
        frame[5..8].copy_from_slice(b"zzz");
        let err = try_read_container_into(&frame, &mut Vec::new(), &mut scratch)
            .map(|c| c.id())
            .unwrap_err();
        assert_eq!(err, CoreError::UnknownCodec("zzz".to_owned()));
    }

    #[test]
    fn payload_corruption_is_caught_by_checksum() {
        let mut scratch = Scratch::new();
        let alp_codec = Registry::get("alp").expect("registered");
        let mut frame = write_container(alp_codec, &sample(), &mut scratch).expect("compress");
        let last = frame.len() - 1;
        frame[last] ^= 0x40;
        let err = try_read_container_into(&frame, &mut Vec::new(), &mut scratch)
            .map(|c| c.id())
            .unwrap_err();
        assert!(
            matches!(err, CoreError::Format(alp::format::FormatError::ChecksumMismatch { .. })),
            "got {err:?}"
        );
    }

    /// Payload byte range of a container frame (after the variable header).
    fn payload_range(codec: &dyn ColumnCodec, frame: &[u8]) -> (usize, usize) {
        let start = FIXED_HEADER + codec.id().len();
        let len_at = MAGIC.len() + 1 + codec.id().len() + 8;
        let payload_len =
            u64::from_le_bytes(frame[len_at..len_at + 8].try_into().unwrap()) as usize;
        (start, start + payload_len)
    }

    #[test]
    fn parity_container_roundtrips_clean_for_every_codec() {
        let data = sample();
        let mut scratch = Scratch::new();
        let mut out = Vec::new();
        for codec in Registry::all().iter().filter(|c| !c.caps().ratio_only) {
            let frame = write_container_with_parity(
                *codec,
                &data,
                &mut scratch,
                ParityConfig { group_size: 4 },
            )
            .expect("compress");
            // The legacy reader skips the trailing section transparently.
            let found =
                try_read_container_into(&frame, &mut out, &mut scratch).expect("legacy read");
            assert_eq!(found.id(), codec.id());
            assert_eq!(out, data, "{} legacy read", codec.id());
            // The salvage reader reports a clean read.
            let salvage = try_read_container_salvaged(&frame, &mut out, &mut scratch, 1)
                .expect("salvage read");
            assert!(salvage.repaired_chunks.is_empty());
            assert_eq!(out, data, "{} salvage read", codec.id());
        }
    }

    #[test]
    fn single_damaged_chunk_per_group_repairs_for_every_codec() {
        let data = sample();
        let mut scratch = Scratch::new();
        let mut out = Vec::new();
        for codec in Registry::all().iter().filter(|c| !c.caps().ratio_only) {
            let frame = write_container_with_parity(
                *codec,
                &data,
                &mut scratch,
                ParityConfig { group_size: 4 },
            )
            .expect("compress");
            let (pstart, pend) = payload_range(*codec, &frame);
            // One corrupted byte in the first chunk of each parity group.
            let mut bytes = frame.clone();
            let mut expected_chunks = Vec::new();
            let mut off = pstart;
            let mut chunk = 0usize;
            while off < pend {
                if chunk.is_multiple_of(4) {
                    bytes[off] ^= 0xA5;
                    expected_chunks.push(chunk);
                }
                off += PARITY_CHUNK_LEN;
                chunk += 1;
            }
            // Detection without repair still errors.
            assert!(try_read_container_into(&bytes, &mut out, &mut scratch).is_err());
            for threads in [1usize, 4] {
                let salvage = try_read_container_salvaged(&bytes, &mut out, &mut scratch, threads)
                    .unwrap_or_else(|e| panic!("{} repair (t={threads}): {e}", codec.id()));
                assert_eq!(salvage.repaired_chunks, expected_chunks, "{}", codec.id());
                assert_eq!(out, data, "{} repaired decode", codec.id());
            }
        }
    }

    #[test]
    fn two_damaged_chunks_in_one_group_report_the_original_error() {
        let data = sample();
        let mut scratch = Scratch::new();
        let mut out = Vec::new();
        let codec = Registry::get("alp").expect("registered");
        let frame =
            write_container_with_parity(codec, &data, &mut scratch, ParityConfig { group_size: 4 })
                .expect("compress");
        let (pstart, pend) = payload_range(codec, &frame);
        let mut bytes = frame.clone();
        bytes[pstart] ^= 0x01;
        bytes[(pstart + PARITY_CHUNK_LEN).min(pend - 1)] ^= 0x01;
        let err = try_read_container_salvaged(&bytes, &mut out, &mut scratch, 2).unwrap_err();
        assert!(
            matches!(err, CoreError::Format(FormatError::ChecksumMismatch { .. })),
            "got {err:?}"
        );
    }

    #[test]
    fn damaged_parity_section_still_reads_data_clean() {
        let data = sample();
        let mut scratch = Scratch::new();
        let mut out = Vec::new();
        let codec = Registry::get("alp").expect("registered");
        let frame =
            write_container_with_parity(codec, &data, &mut scratch, ParityConfig { group_size: 2 })
                .expect("compress");
        let (_, pend) = payload_range(codec, &frame);
        let mut bytes = frame.clone();
        for b in &mut bytes[pend..] {
            *b ^= 0x3C;
        }
        let salvage = try_read_container_salvaged(&bytes, &mut out, &mut scratch, 1)
            .expect("clean payload reads despite trashed parity");
        assert!(salvage.repaired_chunks.is_empty());
        assert_eq!(out, data);
    }

    #[test]
    fn parity_rejects_bad_group_size() {
        let err = write_container_with_parity(
            Registry::get("alp").unwrap(),
            &sample(),
            &mut Scratch::new(),
            ParityConfig { group_size: 0 },
        )
        .unwrap_err();
        assert!(matches!(err, CoreError::Config(_)));
    }

    #[test]
    fn truncation_never_panics() {
        let mut scratch = Scratch::new();
        let alp_codec = Registry::get("alp").expect("registered");
        let frame = write_container(alp_codec, &sample(), &mut scratch).expect("compress");
        for cut in [0, 1, 3, 4, 5, 10, 20, frame.len() / 2, frame.len() - 1] {
            assert!(
                try_read_container_into(&frame[..cut], &mut Vec::new(), &mut scratch).is_err(),
                "truncation at {cut} must err"
            );
        }
    }
}
