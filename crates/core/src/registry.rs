//! The one table every compression scheme is reachable through.
//!
//! Each [`ColumnCodec`] implementation in [`crate::impls`] appears exactly
//! once in [`ENTRIES`], one literal per line — the `registry-sync` analyzer
//! rule textually checks that impls and entries stay 1:1, so keep the list
//! explicit (no macros, no computed entries).

use crate::codec::ColumnCodec;
use crate::impls;

/// Every registered codec, one literal entry per implementation.
static ENTRIES: &[&'static dyn ColumnCodec] = &[
    &impls::Gorilla,
    &impls::Chimp,
    &impls::Chimp128,
    &impls::Patas,
    &impls::Pde,
    &impls::Elf,
    &impls::Fpc,
    &impls::Alp,
    &impls::LwcAlp,
    &impls::Gpzip,
    &impls::GpzipFast,
];

/// The nine schemes of the paper's Table 4 (compression-ratio comparison),
/// in presentation order.
pub const TABLE4_IDS: [&str; 9] =
    ["alp", "lwc-alp", "patas", "chimp128", "chimp", "gorilla", "pde", "elf", "gpzip"];

/// The eight byte-serializable schemes of the speed benchmarks
/// (Table 5 / Figure 1), in presentation order.
pub const SPEED_IDS: [&str; 8] =
    ["alp", "patas", "chimp128", "chimp", "gorilla", "pde", "elf", "gpzip"];

/// Static lookup over every registered [`ColumnCodec`].
pub struct Registry;

impl Registry {
    /// Every registered codec, in registration order.
    pub fn all() -> &'static [&'static dyn ColumnCodec] {
        ENTRIES
    }

    /// Looks a codec up by its stable id.
    pub fn get(id: &str) -> Option<&'static dyn ColumnCodec> {
        ENTRIES.iter().copied().find(|c| c.id() == id)
    }

    /// Resolves a list of ids, preserving order. `None` if any id is
    /// unregistered.
    pub fn resolve(ids: &[&str]) -> Option<Vec<&'static dyn ColumnCodec>> {
        ids.iter().map(|id| Self::get(id)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn ids_are_unique() {
        let mut seen = HashSet::new();
        for codec in Registry::all() {
            assert!(seen.insert(codec.id()), "duplicate registry id {:?}", codec.id());
        }
    }

    #[test]
    fn names_are_unique() {
        let mut seen = HashSet::new();
        for codec in Registry::all() {
            assert!(seen.insert(codec.name()), "duplicate registry name {:?}", codec.name());
        }
    }

    #[test]
    fn table4_ids_resolve() {
        assert!(Registry::resolve(&TABLE4_IDS).is_some());
    }

    #[test]
    fn speed_ids_resolve_and_are_serializable() {
        let codecs = Registry::resolve(&SPEED_IDS).expect("all speed ids registered");
        for codec in codecs {
            assert!(!codec.caps().ratio_only, "{} is ratio-only", codec.id());
        }
    }

    #[test]
    fn get_unknown_id_is_none() {
        assert!(Registry::get("zstd").is_none());
        assert!(Registry::get("").is_none());
    }

    #[test]
    fn lookup_by_id_roundtrips() {
        for codec in Registry::all() {
            let found = Registry::get(codec.id()).expect("id resolves");
            assert_eq!(found.id(), codec.id());
            assert_eq!(found.name(), codec.name());
        }
    }
}
