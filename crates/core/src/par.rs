//! `alp_core::par` — the workspace's shared morsel scheduler, plus the
//! codec-level parallel helpers behind [`ColumnCodec::par_compress`] and
//! [`ColumnCodec::par_decompress`].
//!
//! The scheduling primitives themselves live in [`alp::par`] (this crate
//! depends on `alp`, not the other way around, so placing them there lets
//! `alp::Compressor::compress_parallel` use the same queue) and are
//! re-exported here verbatim; `vectorq`, the CLI, and the benches all import
//! them through this module.
//!
//! The helpers in this module parallelize any registered codec by splitting
//! the column into fixed-size chunks and treating each chunk as one morsel.
//! Scratch ownership follows DESIGN.md §10: every worker builds exactly one
//! [`Scratch`] before its claim loop and reuses it across all chunks it
//! claims, so the zero-alloc-after-warm-up discipline of
//! `tests/alloc_discipline.rs` holds per worker.

pub use alp::par::{
    fold_morsels, map_morsels, resolve_threads, run_morsels_contained, run_morsels_governed,
    try_map_morsels, CancelToken, GovernedRun, MorselFailure, MorselQueue, THREADS_ENV,
};

use alp::ConfigError;

use crate::codec::ColumnCodec;
use crate::error::CoreError;
use crate::scratch::Scratch;

/// Default values per parallel chunk: one paper row-group (100 × 1024).
/// Large enough that per-chunk headers are noise, small enough that a
/// multi-row-group column fans out across workers.
pub const DEFAULT_CHUNK_VALUES: usize = 100 * 1024;

/// Compresses `data` as independent `chunk_values`-sized chunks on up to
/// `threads` morsel-claiming workers. Returns `(bytes, values)` per chunk,
/// in column order — byte-identical to compressing the same chunks serially,
/// at every thread count, because chunk boundaries (not thread count) define
/// the encoding units.
pub fn compress_chunks<C: ColumnCodec + ?Sized>(
    codec: &C,
    data: &[f64],
    chunk_values: usize,
    threads: usize,
) -> Result<Vec<(Vec<u8>, usize)>, CoreError> {
    if chunk_values == 0 {
        return Err(CoreError::Config(ConfigError { param: "chunk_values" }));
    }
    let morsels = data.len().div_ceil(chunk_values);
    try_map_morsels(
        threads,
        morsels,
        Scratch::new,
        |scratch, m| -> Result<(Vec<u8>, usize), CoreError> {
            let start = m * chunk_values;
            let end = (start + chunk_values).min(data.len());
            let chunk = &data[start..end];
            let mut bytes = Vec::new();
            codec.try_compress_into(chunk, &mut bytes, scratch)?;
            Ok((bytes, chunk.len()))
        },
    )
}

/// Decompresses chunks produced by [`compress_chunks`] on up to `threads`
/// workers and concatenates them in order. Each worker owns one [`Scratch`].
pub fn decompress_chunks<C: ColumnCodec + ?Sized>(
    codec: &C,
    blocks: &[(Vec<u8>, usize)],
    threads: usize,
) -> Result<Vec<f64>, CoreError> {
    let parts = try_map_morsels(
        threads,
        blocks.len(),
        Scratch::new,
        |scratch, m| -> Result<Vec<f64>, CoreError> {
            let (bytes, count) = &blocks[m];
            let mut part = Vec::new();
            codec.try_decompress_into(bytes, *count, &mut part, scratch)?;
            Ok(part)
        },
    )?;
    let total = parts.iter().map(Vec::len).sum();
    let mut out = Vec::with_capacity(total);
    for p in &parts {
        out.extend_from_slice(p);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;

    fn sample(n: usize) -> Vec<f64> {
        (0..n)
            .map(
                |i| if i % 500 == 499 { (i as f64).sqrt() * 1e-6 } else { (i % 997) as f64 * 0.25 },
            )
            .collect()
    }

    #[test]
    fn zero_chunk_size_is_a_typed_config_error() {
        let codec = Registry::get("gorilla").unwrap();
        let err = compress_chunks(codec, &sample(100), 0, 2).unwrap_err();
        assert!(matches!(err, CoreError::Config(ConfigError { param: "chunk_values" })));
    }

    #[test]
    fn chunked_roundtrip_across_thread_counts() {
        let data = sample(10_000);
        let codec = Registry::get("chimp128").unwrap();
        let reference = compress_chunks(codec, &data, 1024, 1).unwrap();
        for threads in [1, 2, 7] {
            let blocks = compress_chunks(codec, &data, 1024, threads).unwrap();
            assert_eq!(blocks, reference, "t={threads}");
            let back = decompress_chunks(codec, &blocks, threads).unwrap();
            assert_eq!(back.len(), data.len());
            for (a, b) in data.iter().zip(&back) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }

    #[test]
    fn ratio_only_codecs_surface_unsupported() {
        let codec = Registry::get("lwc-alp").unwrap();
        let err = compress_chunks(codec, &sample(2048), 1024, 2).unwrap_err();
        assert!(matches!(err, CoreError::Unsupported { .. }));
    }

    #[test]
    fn empty_column_yields_no_chunks() {
        let codec = Registry::get("gorilla").unwrap();
        let blocks = compress_chunks(codec, &[], 1024, 4).unwrap();
        assert!(blocks.is_empty());
        assert!(decompress_chunks(codec, &blocks, 4).unwrap().is_empty());
    }
}
