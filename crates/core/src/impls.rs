//! [`ColumnCodec`] implementations — one unit struct per scheme of the
//! paper's evaluation, each registered exactly once in [`crate::registry`].
//!
//! The impls are thin adapters: all compression logic lives in the `codecs`,
//! `alp`, and `gpzip` crates; this module only maps the uniform trait surface
//! onto each crate's native API and error model.

use crate::codec::{verify_lossless, Capabilities, ColumnCodec};
use crate::error::CoreError;
use crate::scan::{ScanAgg, ScanPredicate, ScanResult};
use crate::scratch::Scratch;

/// Merges a per-vector min into the running min with the same tie semantics
/// as the sequential fold in [`crate::scan::scan_values`] (earlier value wins
/// ties, e.g. `0.0` vs `-0.0`), keeping fused and materializing scans
/// bit-identical.
fn merge_min(acc: Option<f64>, v: Option<f64>) -> Option<f64> {
    match (acc, v) {
        (Some(a), Some(b)) => Some(if a <= b { a } else { b }),
        (Some(a), None) => Some(a),
        (None, b) => b,
    }
}

/// Max-side twin of [`merge_min`].
fn merge_max(acc: Option<f64>, v: Option<f64>) -> Option<f64> {
    match (acc, v) {
        (Some(a), Some(b)) => Some(if a >= b { a } else { b }),
        (Some(a), None) => Some(a),
        (None, b) => b,
    }
}

/// Shared compress path of the seven per-value baselines.
fn baseline_compress(
    codec: codecs::Codec,
    data: &[f64],
    out: &mut Vec<u8>,
) -> Result<(), CoreError> {
    out.clear();
    out.extend_from_slice(&codec.compress_f64(data));
    Ok(())
}

/// Shared decode path of the seven per-value baselines — allocation-free once
/// `out` and `scratch` are warm.
fn baseline_decompress(
    codec: codecs::Codec,
    bytes: &[u8],
    count: usize,
    out: &mut Vec<f64>,
    scratch: &mut Scratch,
) -> Result<(), CoreError> {
    codec.try_decompress_f64_into(bytes, count, out, &mut scratch.codecs)?;
    Ok(())
}

/// Shared f32 compress path of the XOR-family baselines.
fn baseline_compress_f32(
    codec: codecs::Codec,
    data: &[f32],
    out: &mut Vec<u8>,
) -> Result<(), CoreError> {
    out.clear();
    out.extend_from_slice(&codec.compress_f32(data)?);
    Ok(())
}

/// Shared f32 decode path of the XOR-family baselines.
fn baseline_decompress_f32(
    codec: codecs::Codec,
    bytes: &[u8],
    count: usize,
    out: &mut Vec<f32>,
    scratch: &mut Scratch,
) -> Result<(), CoreError> {
    codec.try_decompress_f32_into(bytes, count, out, &mut scratch.codecs)?;
    Ok(())
}

/// Gorilla (Facebook, VLDB'15).
pub struct Gorilla;

impl ColumnCodec for Gorilla {
    fn id(&self) -> &'static str {
        "gorilla"
    }
    fn name(&self) -> &'static str {
        "Gorilla"
    }
    fn caps(&self) -> Capabilities {
        Capabilities { f32: true, ..Capabilities::vector() }
    }
    fn try_compress_into(
        &self,
        data: &[f64],
        out: &mut Vec<u8>,
        _scratch: &mut Scratch,
    ) -> Result<(), CoreError> {
        baseline_compress(codecs::Codec::Gorilla, data, out)
    }
    fn try_decompress_into(
        &self,
        bytes: &[u8],
        count: usize,
        out: &mut Vec<f64>,
        scratch: &mut Scratch,
    ) -> Result<(), CoreError> {
        baseline_decompress(codecs::Codec::Gorilla, bytes, count, out, scratch)
    }
    fn try_compress_f32_into(
        &self,
        data: &[f32],
        out: &mut Vec<u8>,
        _scratch: &mut Scratch,
    ) -> Result<(), CoreError> {
        baseline_compress_f32(codecs::Codec::Gorilla, data, out)
    }
    fn try_decompress_f32_into(
        &self,
        bytes: &[u8],
        count: usize,
        out: &mut Vec<f32>,
        scratch: &mut Scratch,
    ) -> Result<(), CoreError> {
        baseline_decompress_f32(codecs::Codec::Gorilla, bytes, count, out, scratch)
    }
}

/// Chimp (VLDB'22).
pub struct Chimp;

impl ColumnCodec for Chimp {
    fn id(&self) -> &'static str {
        "chimp"
    }
    fn name(&self) -> &'static str {
        "Chimp"
    }
    fn caps(&self) -> Capabilities {
        Capabilities { f32: true, ..Capabilities::vector() }
    }
    fn try_compress_into(
        &self,
        data: &[f64],
        out: &mut Vec<u8>,
        _scratch: &mut Scratch,
    ) -> Result<(), CoreError> {
        baseline_compress(codecs::Codec::Chimp, data, out)
    }
    fn try_decompress_into(
        &self,
        bytes: &[u8],
        count: usize,
        out: &mut Vec<f64>,
        scratch: &mut Scratch,
    ) -> Result<(), CoreError> {
        baseline_decompress(codecs::Codec::Chimp, bytes, count, out, scratch)
    }
    fn try_compress_f32_into(
        &self,
        data: &[f32],
        out: &mut Vec<u8>,
        _scratch: &mut Scratch,
    ) -> Result<(), CoreError> {
        baseline_compress_f32(codecs::Codec::Chimp, data, out)
    }
    fn try_decompress_f32_into(
        &self,
        bytes: &[u8],
        count: usize,
        out: &mut Vec<f32>,
        scratch: &mut Scratch,
    ) -> Result<(), CoreError> {
        baseline_decompress_f32(codecs::Codec::Chimp, bytes, count, out, scratch)
    }
}

/// Chimp128 — Chimp with a 128-value reference window.
pub struct Chimp128;

impl ColumnCodec for Chimp128 {
    fn id(&self) -> &'static str {
        "chimp128"
    }
    fn name(&self) -> &'static str {
        "Chimp128"
    }
    fn caps(&self) -> Capabilities {
        Capabilities { f32: true, ..Capabilities::vector() }
    }
    fn try_compress_into(
        &self,
        data: &[f64],
        out: &mut Vec<u8>,
        _scratch: &mut Scratch,
    ) -> Result<(), CoreError> {
        baseline_compress(codecs::Codec::Chimp128, data, out)
    }
    fn try_decompress_into(
        &self,
        bytes: &[u8],
        count: usize,
        out: &mut Vec<f64>,
        scratch: &mut Scratch,
    ) -> Result<(), CoreError> {
        baseline_decompress(codecs::Codec::Chimp128, bytes, count, out, scratch)
    }
    fn try_compress_f32_into(
        &self,
        data: &[f32],
        out: &mut Vec<u8>,
        _scratch: &mut Scratch,
    ) -> Result<(), CoreError> {
        baseline_compress_f32(codecs::Codec::Chimp128, data, out)
    }
    fn try_decompress_f32_into(
        &self,
        bytes: &[u8],
        count: usize,
        out: &mut Vec<f32>,
        scratch: &mut Scratch,
    ) -> Result<(), CoreError> {
        baseline_decompress_f32(codecs::Codec::Chimp128, bytes, count, out, scratch)
    }
}

/// Patas (DuckDB) — byte-aligned Chimp128 variant.
pub struct Patas;

impl ColumnCodec for Patas {
    fn id(&self) -> &'static str {
        "patas"
    }
    fn name(&self) -> &'static str {
        "Patas"
    }
    fn caps(&self) -> Capabilities {
        Capabilities { f32: true, ..Capabilities::vector() }
    }
    fn try_compress_into(
        &self,
        data: &[f64],
        out: &mut Vec<u8>,
        _scratch: &mut Scratch,
    ) -> Result<(), CoreError> {
        baseline_compress(codecs::Codec::Patas, data, out)
    }
    fn try_decompress_into(
        &self,
        bytes: &[u8],
        count: usize,
        out: &mut Vec<f64>,
        scratch: &mut Scratch,
    ) -> Result<(), CoreError> {
        baseline_decompress(codecs::Codec::Patas, bytes, count, out, scratch)
    }
    fn try_compress_f32_into(
        &self,
        data: &[f32],
        out: &mut Vec<u8>,
        _scratch: &mut Scratch,
    ) -> Result<(), CoreError> {
        baseline_compress_f32(codecs::Codec::Patas, data, out)
    }
    fn try_decompress_f32_into(
        &self,
        bytes: &[u8],
        count: usize,
        out: &mut Vec<f32>,
        scratch: &mut Scratch,
    ) -> Result<(), CoreError> {
        baseline_decompress_f32(codecs::Codec::Patas, bytes, count, out, scratch)
    }
}

/// PseudoDecimals (BtrBlocks, SIGMOD'23).
pub struct Pde;

impl ColumnCodec for Pde {
    fn id(&self) -> &'static str {
        "pde"
    }
    fn name(&self) -> &'static str {
        "PDE"
    }
    fn caps(&self) -> Capabilities {
        Capabilities::vector()
    }
    fn try_compress_into(
        &self,
        data: &[f64],
        out: &mut Vec<u8>,
        _scratch: &mut Scratch,
    ) -> Result<(), CoreError> {
        baseline_compress(codecs::Codec::Pde, data, out)
    }
    fn try_decompress_into(
        &self,
        bytes: &[u8],
        count: usize,
        out: &mut Vec<f64>,
        scratch: &mut Scratch,
    ) -> Result<(), CoreError> {
        baseline_decompress(codecs::Codec::Pde, bytes, count, out, scratch)
    }
}

/// Elf (VLDB'23) — erase-then-XOR.
pub struct Elf;

impl ColumnCodec for Elf {
    fn id(&self) -> &'static str {
        "elf"
    }
    fn name(&self) -> &'static str {
        "Elf"
    }
    fn caps(&self) -> Capabilities {
        Capabilities::vector()
    }
    fn try_compress_into(
        &self,
        data: &[f64],
        out: &mut Vec<u8>,
        _scratch: &mut Scratch,
    ) -> Result<(), CoreError> {
        baseline_compress(codecs::Codec::Elf, data, out)
    }
    fn try_decompress_into(
        &self,
        bytes: &[u8],
        count: usize,
        out: &mut Vec<f64>,
        scratch: &mut Scratch,
    ) -> Result<(), CoreError> {
        baseline_decompress(codecs::Codec::Elf, bytes, count, out, scratch)
    }
}

/// FPC (TC'09) — predictive FCM/DFCM scheme.
pub struct Fpc;

impl ColumnCodec for Fpc {
    fn id(&self) -> &'static str {
        "fpc"
    }
    fn name(&self) -> &'static str {
        "FPC"
    }
    fn caps(&self) -> Capabilities {
        Capabilities::vector()
    }
    fn try_compress_into(
        &self,
        data: &[f64],
        out: &mut Vec<u8>,
        _scratch: &mut Scratch,
    ) -> Result<(), CoreError> {
        baseline_compress(codecs::Codec::Fpc, data, out)
    }
    fn try_decompress_into(
        &self,
        bytes: &[u8],
        count: usize,
        out: &mut Vec<f64>,
        scratch: &mut Scratch,
    ) -> Result<(), CoreError> {
        baseline_decompress(codecs::Codec::Fpc, bytes, count, out, scratch)
    }
}

/// ALP (this paper), serialized in its checksummed `ALP2` column format.
pub struct Alp;

impl ColumnCodec for Alp {
    fn id(&self) -> &'static str {
        "alp"
    }
    fn name(&self) -> &'static str {
        "ALP"
    }
    fn caps(&self) -> Capabilities {
        Capabilities {
            random_vector_access: true,
            f32: true,
            fused_scan: true,
            streaming_ingest: true,
            ..Capabilities::vector()
        }
    }
    fn try_compress_into(
        &self,
        data: &[f64],
        out: &mut Vec<u8>,
        _scratch: &mut Scratch,
    ) -> Result<(), CoreError> {
        let compressed = alp::Compressor::new().compress(data);
        out.clear();
        out.extend_from_slice(&alp::format::to_bytes(&compressed));
        Ok(())
    }
    /// Fused scan: per-vector unpack→FOR→patch→predicate→aggregate kernels
    /// with mid-stream exception patching; ALP_rd vectors (no decimal fast
    /// path) decode into scratch and scan. Bit-identical to the default
    /// materialize-then-scan — per-vector chains added in vector order.
    fn try_scan_fused(
        &self,
        bytes: &[u8],
        count: usize,
        pred: ScanPredicate,
        agg: ScanAgg,
        scratch: &mut Scratch,
    ) -> Result<ScanResult, CoreError> {
        let compressed = alp::format::from_bytes::<f64>(bytes)?;
        if compressed.len != count {
            return Err(CoreError::LengthMismatch {
                codec: "alp",
                expected: count,
                actual: compressed.len,
            });
        }
        let with_minmax = matches!(agg, ScanAgg::All);
        let mut floats = std::mem::take(&mut scratch.floats);
        floats.clear();
        floats.resize(alp::VECTOR_SIZE, 0.0);
        let mut result = ScanResult::new();
        for (rg_idx, rg) in compressed.rowgroups.iter().enumerate() {
            for v_idx in 0..rg.vector_count() {
                let scan = compressed.try_scan_vector(
                    rg_idx,
                    v_idx,
                    pred.lo,
                    pred.hi,
                    with_minmax,
                    &mut floats,
                );
                let Ok(scan) = scan else {
                    // Unreachable: both indices come from the iteration above.
                    scratch.floats = floats;
                    return Err(CoreError::Unsupported {
                        codec: "alp",
                        what: "fused scan of an out-of-range vector",
                    });
                };
                result.sum += scan.sum;
                result.matches += scan.matches;
                result.min = merge_min(result.min, scan.min);
                result.max = merge_max(result.max, scan.max);
                let mut remaining = scan.len;
                for &w in scan.valid.iter() {
                    if remaining == 0 {
                        break;
                    }
                    let bits = remaining.min(64);
                    result.validity.push_word(w, bits);
                    remaining -= bits;
                }
            }
        }
        scratch.floats = floats;
        Ok(result)
    }
    fn try_decompress_into(
        &self,
        bytes: &[u8],
        count: usize,
        out: &mut Vec<f64>,
        _scratch: &mut Scratch,
    ) -> Result<(), CoreError> {
        let compressed = alp::format::from_bytes::<f64>(bytes)?;
        if compressed.len != count {
            return Err(CoreError::LengthMismatch {
                codec: "alp",
                expected: count,
                actual: compressed.len,
            });
        }
        out.clear();
        out.extend_from_slice(&compressed.decompress());
        Ok(())
    }
    fn try_compress_f32_into(
        &self,
        data: &[f32],
        out: &mut Vec<u8>,
        _scratch: &mut Scratch,
    ) -> Result<(), CoreError> {
        let compressed = alp::Compressor::new().compress(data);
        out.clear();
        out.extend_from_slice(&alp::format::to_bytes(&compressed));
        Ok(())
    }
    fn try_decompress_f32_into(
        &self,
        bytes: &[u8],
        count: usize,
        out: &mut Vec<f32>,
        _scratch: &mut Scratch,
    ) -> Result<(), CoreError> {
        let compressed = alp::format::from_bytes::<f32>(bytes)?;
        if compressed.len != count {
            return Err(CoreError::LengthMismatch {
                codec: "alp",
                expected: count,
                actual: compressed.len,
            });
        }
        out.clear();
        out.extend_from_slice(&compressed.decompress());
        Ok(())
    }
    /// Table 4 methodology: ALP's size is its exact in-memory bit accounting
    /// (vector headers + payload + exceptions), not the serialized file size
    /// with magic and integrity frames.
    fn verified_compressed_bits(
        &self,
        data: &[f64],
        _scratch: &mut Scratch,
    ) -> Result<usize, CoreError> {
        let compressed = alp::Compressor::new().compress(data);
        verify_lossless("alp", data, &compressed.decompress())?;
        Ok(compressed.compressed_bits())
    }
}

/// ALP behind a Dictionary/RLE cascade — the "LWC+ALP" column of Table 4.
/// Ratio-only: the cascade has no byte serialization.
pub struct LwcAlp;

impl ColumnCodec for LwcAlp {
    fn id(&self) -> &'static str {
        "lwc-alp"
    }
    fn name(&self) -> &'static str {
        "LWC+ALP"
    }
    fn caps(&self) -> Capabilities {
        Capabilities { ratio_only: true, cacheable_decode: false, ..Capabilities::vector() }
    }
    fn try_compress_into(
        &self,
        _data: &[f64],
        _out: &mut Vec<u8>,
        _scratch: &mut Scratch,
    ) -> Result<(), CoreError> {
        Err(CoreError::Unsupported { codec: "lwc-alp", what: "byte serialization (ratio-only)" })
    }
    fn try_decompress_into(
        &self,
        _bytes: &[u8],
        _count: usize,
        _out: &mut Vec<f64>,
        _scratch: &mut Scratch,
    ) -> Result<(), CoreError> {
        Err(CoreError::Unsupported { codec: "lwc-alp", what: "byte serialization (ratio-only)" })
    }
    fn verified_compressed_bits(
        &self,
        data: &[f64],
        _scratch: &mut Scratch,
    ) -> Result<usize, CoreError> {
        let compressed = alp::cascade::CascadeCompressor::new().compress(data);
        verify_lossless("lwc-alp", data, &compressed.decompress())?;
        Ok(compressed.compressed_bits())
    }
}

/// Converts staged little-endian bytes back into `out` after a GPZip inflate.
fn bytes_to_f64(
    codec: &'static str,
    raw: &[u8],
    count: usize,
    out: &mut Vec<f64>,
) -> Result<(), CoreError> {
    if raw.len() != count * 8 {
        return Err(CoreError::LengthMismatch { codec, expected: count, actual: raw.len() / 8 });
    }
    out.clear();
    out.reserve(count.min(1 << 24));
    for chunk in raw.chunks_exact(8) {
        let mut le = [0u8; 8];
        le.copy_from_slice(chunk);
        out.push(f64::from_le_bytes(le));
    }
    Ok(())
}

/// Stages `data` as little-endian bytes into `scratch.bytes`.
fn f64_to_bytes(data: &[f64], scratch: &mut Scratch) {
    scratch.bytes.clear();
    scratch.bytes.reserve(data.len() * 8);
    for v in data {
        scratch.bytes.extend_from_slice(&v.to_le_bytes());
    }
}

/// GPZip default mode — the deflate-class general-purpose stand-in for Zstd.
pub struct Gpzip;

impl ColumnCodec for Gpzip {
    fn id(&self) -> &'static str {
        "gpzip"
    }
    fn name(&self) -> &'static str {
        "Zstd*"
    }
    fn caps(&self) -> Capabilities {
        Capabilities { block_based: true, ..Capabilities::vector() }
    }
    fn try_compress_into(
        &self,
        data: &[f64],
        out: &mut Vec<u8>,
        scratch: &mut Scratch,
    ) -> Result<(), CoreError> {
        f64_to_bytes(data, scratch);
        out.clear();
        out.extend_from_slice(&gpzip::compress(&scratch.bytes));
        Ok(())
    }
    fn try_decompress_into(
        &self,
        bytes: &[u8],
        count: usize,
        out: &mut Vec<f64>,
        scratch: &mut Scratch,
    ) -> Result<(), CoreError> {
        gpzip::try_decompress_into(bytes, &mut scratch.bytes)?;
        bytes_to_f64("gpzip", &scratch.bytes, count, out)
    }
}

/// GPZip fast mode — the LZ4/Snappy-class point of the general-purpose
/// spectrum (greedy hash matching, no entropy stage).
pub struct GpzipFast;

impl ColumnCodec for GpzipFast {
    fn id(&self) -> &'static str {
        "gpzip-fast"
    }
    fn name(&self) -> &'static str {
        "LZ4*"
    }
    fn caps(&self) -> Capabilities {
        Capabilities { block_based: true, ..Capabilities::vector() }
    }
    fn try_compress_into(
        &self,
        data: &[f64],
        out: &mut Vec<u8>,
        scratch: &mut Scratch,
    ) -> Result<(), CoreError> {
        f64_to_bytes(data, scratch);
        out.clear();
        out.extend_from_slice(&gpzip::fast::compress(&scratch.bytes));
        Ok(())
    }
    fn try_decompress_into(
        &self,
        bytes: &[u8],
        count: usize,
        out: &mut Vec<f64>,
        scratch: &mut Scratch,
    ) -> Result<(), CoreError> {
        gpzip::fast::try_decompress_into(bytes, &mut scratch.bytes)?;
        bytes_to_f64("gpzip-fast", &scratch.bytes, count, out)
    }
}
