//! Fused-scan support: validity bitmaps ([`Validity`]), the scan contract
//! ([`ScanResult`]), and the materialize-then-scan reference implementation
//! ([`scan_values`]) behind `ColumnCodec::try_scan_fused`'s default.
//!
//! ## Accumulation contract
//! A scan folds `sum = sum + if hit { x } else { 0.0 }` value-by-value — one
//! sequential scalar chain per 1024-value vector — then adds the per-vector
//! sums in vector order. Floating-point addition is not associative, so this
//! exact order *is* the contract: a fused override must reproduce it so fused
//! and materializing scans agree bit-for-bit at every thread count. Fusion
//! buys the elimination of the decoded vector's store/load round trip, not a
//! reassociated reduction.
//!
//! ## Validity bitmap layout
//! Bit `i` of word `i / 64` describes value `i`: set ⇔ the value is live and
//! not NaN (the workspace's only invalid state — there is no null encoding in
//! the float domain). Bits at and past `len` are always clear, so counts are
//! plain popcounts over the words.

use alp::VECTOR_SIZE;

/// Growable validity bitmap: 64-bit words, popcount-based counts.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Validity {
    words: Vec<u64>,
    len: usize,
}

impl Validity {
    /// Empty bitmap.
    pub fn new() -> Self {
        Self::default()
    }

    /// Empty bitmap with room for `values` bits.
    pub fn with_capacity(values: usize) -> Self {
        Self { words: Vec::with_capacity(values.div_ceil(64)), len: 0 }
    }

    /// Number of values described.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True iff no values are described.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Appends one validity bit.
    pub fn push(&mut self, valid: bool) {
        self.push_word(valid as u64, 1);
    }

    /// Appends the low `bits` bits of `word` (high-to-low = later-to-earlier
    /// values). `bits` must be ≤ 64; higher bits of `word` are ignored.
    pub fn push_word(&mut self, word: u64, bits: usize) {
        assert!(bits <= 64);
        if bits == 0 {
            return;
        }
        let word = if bits == 64 { word } else { word & ((1u64 << bits) - 1) };
        let off = self.len & 63;
        if off == 0 {
            self.words.push(word);
        } else {
            if let Some(last) = self.words.last_mut() {
                *last |= word << off;
            }
            if off + bits > 64 {
                self.words.push(word >> (64 - off));
            }
        }
        self.len += bits;
    }

    /// Validity of value `i` (false out of range).
    pub fn get(&self, i: usize) -> bool {
        i < self.len && self.words.get(i / 64).is_some_and(|w| (w >> (i % 64)) & 1 == 1)
    }

    /// The raw bitmap words (bit `i` of word `i / 64` ⇔ value `i` valid).
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Number of valid (non-NaN) values — a popcount over the words.
    pub fn count_valid(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Number of invalid (NaN) values.
    pub fn count_invalid(&self) -> usize {
        self.len - self.count_valid()
    }

    /// Resets to empty, keeping the allocation.
    pub fn clear(&mut self) {
        self.words.clear();
        self.len = 0;
    }
}

/// Range predicate `lo <= x <= hi`. NaN never matches (both comparisons
/// fail), so predicate hits are always valid values.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScanPredicate {
    /// Inclusive lower bound.
    pub lo: f64,
    /// Inclusive upper bound.
    pub hi: f64,
}

/// Which aggregates a scan must fill in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScanAgg {
    /// SUM and COUNT of the matches — the query service's hot path.
    SumCount,
    /// SUM, COUNT, MIN and MAX of the matches.
    All,
}

/// Result of a predicate scan, fused or materializing.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ScanResult {
    /// Chain sum of the matching values (see the module contract).
    pub sum: f64,
    /// Number of matching values.
    pub matches: usize,
    /// Minimum matching value; `None` when nothing matched or min/max were
    /// not requested ([`ScanAgg::SumCount`]). Never a ±inf sentinel.
    pub min: Option<f64>,
    /// Maximum matching value (see `min`).
    pub max: Option<f64>,
    /// Per-value validity of everything scanned.
    pub validity: Validity,
}

impl ScanResult {
    /// Empty result (additive identity).
    pub fn new() -> Self {
        Self::default()
    }
}

/// The reference scan: folds the contract chain over `values` at 1024-value
/// vector granularity, appending to `result`. `try_scan_fused`'s default
/// decompresses and calls this; fused overrides must match it bit-for-bit.
pub fn scan_values(values: &[f64], pred: ScanPredicate, agg: ScanAgg, result: &mut ScanResult) {
    let with_minmax = matches!(agg, ScanAgg::All);
    for vector in values.chunks(VECTOR_SIZE) {
        // One sequential scalar chain per vector; per-vector sums are then
        // added in vector order — the exact shape the fused kernels mirror.
        let mut sum = 0.0f64;
        let mut matches = 0usize;
        for word_chunk in vector.chunks(64) {
            let mut vw = 0u64;
            for (j, &x) in word_chunk.iter().enumerate() {
                let hit = x >= pred.lo && x <= pred.hi;
                sum += if hit { x } else { 0.0 };
                matches += hit as usize;
                vw |= ((!x.is_nan()) as u64) << j;
                if with_minmax && hit {
                    result.min = Some(match result.min {
                        Some(m) if m <= x => m,
                        _ => x,
                    });
                    result.max = Some(match result.max {
                        Some(m) if m >= x => m,
                        _ => x,
                    });
                }
            }
            result.validity.push_word(vw, word_chunk.len());
        }
        result.sum += sum;
        result.matches += matches;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validity_push_and_count() {
        let mut v = Validity::new();
        for i in 0..130 {
            v.push(i % 3 != 0);
        }
        assert_eq!(v.len(), 130);
        assert_eq!(v.count_invalid(), (0..130).filter(|i| i % 3 == 0).count());
        assert_eq!(v.count_valid() + v.count_invalid(), 130);
        assert!(!v.get(0));
        assert!(v.get(1));
        assert!(!v.get(129 + 1)); // out of range
    }

    #[test]
    fn validity_push_word_handles_misalignment() {
        let mut a = Validity::new();
        a.push_word(0b1011, 4);
        a.push_word(u64::MAX, 64); // spans a word boundary at offset 4
        a.push_word(0b01, 2);
        let mut b = Validity::new();
        for i in 0..70 {
            b.push(match i {
                0 => true,
                1 => true,
                2 => false,
                3 => true,
                68 => true,
                69 => false,
                _ => true,
            });
        }
        assert_eq!(a, b);
        assert_eq!(a.count_valid(), b.count_valid());
    }

    #[test]
    fn validity_word_bits_match_value_order() {
        let mut v = Validity::new();
        v.push_word(1 << 63, 64);
        assert!(!v.get(0));
        assert!(v.get(63));
        assert_eq!(v.words(), &[1u64 << 63]);
    }

    #[test]
    fn scan_values_basics() {
        let vals = [1.0, f64::NAN, 3.0, -2.0, 5.0];
        let mut r = ScanResult::new();
        scan_values(&vals, ScanPredicate { lo: 0.0, hi: 4.0 }, ScanAgg::All, &mut r);
        assert_eq!(r.matches, 2);
        assert_eq!(r.sum, 4.0);
        assert_eq!((r.min, r.max), (Some(1.0), Some(3.0)));
        assert_eq!(r.validity.count_invalid(), 1);
        assert_eq!(r.validity.len(), 5);
    }

    #[test]
    fn scan_values_no_match_yields_none_not_infinities() {
        let vals = [f64::NAN, f64::NAN];
        let mut r = ScanResult::new();
        scan_values(
            &vals,
            ScanPredicate { lo: f64::NEG_INFINITY, hi: f64::INFINITY },
            ScanAgg::All,
            &mut r,
        );
        assert_eq!(r.matches, 0);
        assert_eq!((r.min, r.max), (None, None));
        assert_eq!(r.validity.count_valid(), 0);
    }

    #[test]
    fn sum_count_mode_skips_minmax() {
        let vals = [1.0, 2.0];
        let mut r = ScanResult::new();
        scan_values(&vals, ScanPredicate { lo: 0.0, hi: 9.0 }, ScanAgg::SumCount, &mut r);
        assert_eq!(r.matches, 2);
        assert_eq!((r.min, r.max), (None, None));
    }
}
