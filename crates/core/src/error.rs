//! Unified error taxonomy over every registered codec.
//!
//! [`CoreError`] wraps the two lower-level error models introduced in the
//! robustness pass — [`codecs::CodecError`] for the per-value codecs and
//! GPZip, [`alp::format::FormatError`] for ALP's checksummed column format —
//! and adds the cross-codec failure modes the registry layer itself can
//! detect (empty input, count mismatches, a roundtrip that was not lossless).

use codecs::CodecError;

/// Why a registry-level operation failed.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// The operation requires a non-empty column.
    Empty,
    /// A per-value codec or GPZip rejected the stream.
    Codec(CodecError),
    /// ALP's column format rejected the stream.
    Format(alp::format::FormatError),
    /// The stream decoded, but to a different number of values than asked.
    LengthMismatch {
        /// Codec that produced the mismatch.
        codec: &'static str,
        /// Values the caller expected.
        expected: usize,
        /// Values actually decoded.
        actual: usize,
    },
    /// A compress/decompress roundtrip changed at least one bit pattern.
    NotLossless {
        /// Codec that failed the roundtrip.
        codec: &'static str,
        /// First differing value index.
        index: usize,
    },
    /// The codec does not support the requested operation (e.g. byte
    /// serialization of a ratio-only configuration, or 32-bit floats).
    Unsupported {
        /// Codec the operation was requested on.
        codec: &'static str,
        /// The missing operation.
        what: &'static str,
    },
    /// A container named a codec id absent from the registry.
    UnknownCodec(String),
    /// A configuration value (sampler parameter, parallel chunk size) was
    /// rejected before any work started.
    Config(alp::ConfigError),
}

impl From<CodecError> for CoreError {
    fn from(e: CodecError) -> Self {
        CoreError::Codec(e)
    }
}

impl From<alp::format::FormatError> for CoreError {
    fn from(e: alp::format::FormatError) -> Self {
        CoreError::Format(e)
    }
}

impl From<alp::ConfigError> for CoreError {
    fn from(e: alp::ConfigError) -> Self {
        CoreError::Config(e)
    }
}

impl core::fmt::Display for CoreError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            CoreError::Empty => write!(f, "operation requires a non-empty column"),
            CoreError::Codec(e) => write!(f, "{e}"),
            CoreError::Format(e) => write!(f, "alp: {e}"),
            CoreError::LengthMismatch { codec, expected, actual } => {
                write!(f, "{codec}: decoded {actual} values, expected {expected}")
            }
            CoreError::NotLossless { codec, index } => {
                write!(f, "{codec}: roundtrip not lossless at value {index}")
            }
            CoreError::Unsupported { codec, what } => {
                write!(f, "{codec}: unsupported operation ({what})")
            }
            CoreError::UnknownCodec(id) => write!(f, "unknown codec id {id:?}"),
            CoreError::Config(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for CoreError {}
