//! The [`ColumnCodec`] trait: one compression abstraction for the whole
//! workspace.

use crate::error::CoreError;
use crate::scan::{scan_values, ScanAgg, ScanPredicate, ScanResult};
use crate::scratch::Scratch;

/// What a codec can and cannot do — consumers branch on capabilities instead
/// of matching on concrete schemes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Capabilities {
    /// Individual 1024-value vectors are decodable without touching the rest
    /// of the column (ALP's skip-friendly access path).
    pub random_vector_access: bool,
    /// A 32-bit float variant exists (Table 7's f32 benchmarks).
    pub f32: bool,
    /// The scheme reports exact compressed size but has no byte
    /// serialization — it participates in ratio tables only (LWC+ALP).
    pub ratio_only: bool,
    /// Decompression is block-granular: reading anything inflates a whole
    /// block (the general-purpose compressors). Vector-granular codecs leave
    /// this false.
    pub block_based: bool,
    /// Decoded pages of this codec are worth holding in a page cache:
    /// decoding costs enough relative to a copy that a long-running query
    /// service should retain hot decompressed pages (`vectorq::cache`).
    /// False for ratio-only schemes, which have no byte path to decode at
    /// all; raw/uncompressed storage is handled by the consumer, not here.
    pub cacheable_decode: bool,
    /// [`ColumnCodec::try_scan_fused`] has a real fused implementation —
    /// predicate and aggregation run inside the decode kernel with no
    /// materialized vector. Codecs leaving this false serve scans through the
    /// default materialize-then-scan path. Enforced by the `registry-sync`
    /// analyzer rule: claiming `fused_scan: true` without overriding
    /// `try_scan_fused` (or vice versa) is a finding.
    pub fused_scan: bool,
    /// An incremental, bounded-memory stream writer exists for this codec,
    /// including a pipelined mode that overlaps compression with source
    /// fill (see [`crate::ingest`]). Columns of any length can be ingested
    /// without materializing them.
    pub streaming_ingest: bool,
}

impl Capabilities {
    /// Defaults of a vector-granular, f64-only, fully serializable codec.
    pub const fn vector() -> Self {
        Capabilities {
            random_vector_access: false,
            f32: false,
            ratio_only: false,
            block_based: false,
            cacheable_decode: true,
            fused_scan: false,
            streaming_ingest: false,
        }
    }
}

/// A lossless floating-point column compressor.
///
/// The fallible `try_*` methods are the real surface — they implement the
/// workspace's untrusted-input contract (return `Err`, never panic, never
/// read out of bounds) and write into caller-owned buffers so hot loops stay
/// allocation-free once the buffers are warm. The panicking `compress` /
/// `decompress` twins are conveniences for trusted in-process data.
///
/// Implementations are unit structs registered exactly once in
/// [`crate::registry`] (enforced by the `registry-sync` analyzer rule).
pub trait ColumnCodec: Sync {
    /// Stable registry id (kebab-case, never changes once released).
    fn id(&self) -> &'static str;

    /// Display name matching the paper's tables.
    fn name(&self) -> &'static str;

    /// What this codec supports.
    fn caps(&self) -> Capabilities;

    /// Compresses `data` into `out` (cleared first).
    ///
    /// Errs with [`CoreError::Unsupported`] for ratio-only schemes.
    fn try_compress_into(
        &self,
        data: &[f64],
        out: &mut Vec<u8>,
        scratch: &mut Scratch,
    ) -> Result<(), CoreError>;

    /// Decompresses `count` values from untrusted `bytes` into `out`
    /// (cleared first), staging through `scratch`.
    fn try_decompress_into(
        &self,
        bytes: &[u8],
        count: usize,
        out: &mut Vec<f64>,
        scratch: &mut Scratch,
    ) -> Result<(), CoreError>;

    /// Compresses a 32-bit float column into `out`. Defaults to
    /// [`CoreError::Unsupported`]; the XOR-family codecs override.
    fn try_compress_f32_into(
        &self,
        _data: &[f32],
        _out: &mut Vec<u8>,
        _scratch: &mut Scratch,
    ) -> Result<(), CoreError> {
        Err(CoreError::Unsupported { codec: self.id(), what: "32-bit compression" })
    }

    /// Decompresses `count` 32-bit floats into `out`. Defaults to
    /// [`CoreError::Unsupported`]; the XOR-family codecs override.
    fn try_decompress_f32_into(
        &self,
        _bytes: &[u8],
        _count: usize,
        _out: &mut Vec<f32>,
        _scratch: &mut Scratch,
    ) -> Result<(), CoreError> {
        Err(CoreError::Unsupported { codec: self.id(), what: "32-bit decompression" })
    }

    /// Exact compressed size of `data` in bits, **verifying losslessness** on
    /// the way: the default compresses, decompresses, and compares bit
    /// patterns, erring with [`CoreError::NotLossless`] on any difference.
    ///
    /// Schemes whose accounted size is not their serialized size (ALP's
    /// in-memory bit accounting, the ratio-only cascade) override this.
    fn verified_compressed_bits(
        &self,
        data: &[f64],
        scratch: &mut Scratch,
    ) -> Result<usize, CoreError> {
        let mut stage = std::mem::take(&mut scratch.stage);
        let mut floats = std::mem::take(&mut scratch.floats);
        let result = (|| {
            self.try_compress_into(data, &mut stage, scratch)?;
            self.try_decompress_into(&stage, data.len(), &mut floats, scratch)?;
            verify_lossless(self.id(), data, &floats)?;
            Ok(stage.len() * 8)
        })();
        scratch.stage = stage;
        scratch.floats = floats;
        result
    }

    /// Predicate scan over a compressed column: aggregates the values
    /// matching `pred` (SUM/COUNT, optionally MIN/MAX per `agg`) plus a
    /// per-value validity bitmap. The default materializes through
    /// [`ColumnCodec::try_decompress_into`] and folds [`scan_values`] over
    /// the buffer; codecs with [`Capabilities::fused_scan`] override with a
    /// kernel that never materializes. Overrides must be **bit-identical** to
    /// this default — same accumulation chain, same bitmap (see
    /// [`crate::scan`] for the contract).
    fn try_scan_fused(
        &self,
        bytes: &[u8],
        count: usize,
        pred: ScanPredicate,
        agg: ScanAgg,
        scratch: &mut Scratch,
    ) -> Result<ScanResult, CoreError> {
        let mut floats = std::mem::take(&mut scratch.floats);
        let result = self.try_decompress_into(bytes, count, &mut floats, scratch).map(|()| {
            let mut r = ScanResult::new();
            scan_values(&floats, pred, agg, &mut r);
            r
        });
        scratch.floats = floats;
        result
    }

    /// Compresses `data` as independent `chunk_values`-sized chunks on up to
    /// `threads` morsel-claiming workers, one [`Scratch`] per worker.
    /// Returns `(bytes, values)` per chunk in column order; the output is
    /// byte-identical at every thread count because chunk boundaries, not
    /// thread count, define the encoding units. See [`crate::par`].
    fn par_compress(
        &self,
        data: &[f64],
        chunk_values: usize,
        threads: usize,
    ) -> Result<Vec<(Vec<u8>, usize)>, CoreError> {
        crate::par::compress_chunks(self, data, chunk_values, threads)
    }

    /// Decompresses chunks produced by [`ColumnCodec::par_compress`] on up
    /// to `threads` workers (one [`Scratch`] each) and concatenates them in
    /// order. Values are identical to decompressing each chunk serially.
    fn par_decompress(
        &self,
        blocks: &[(Vec<u8>, usize)],
        threads: usize,
    ) -> Result<Vec<f64>, CoreError> {
        crate::par::decompress_chunks(self, blocks, threads)
    }

    /// Compresses trusted data, panicking on failure — use
    /// [`ColumnCodec::try_compress_into`] for anything fallible.
    fn compress(&self, data: &[f64]) -> Vec<u8> {
        let mut out = Vec::new();
        // ANALYZER-ALLOW(no-panic): documented panicking convenience wrapper;
        // the try_ twin above is the fallible path.
        self.try_compress_into(data, &mut out, &mut Scratch::new()).expect("compression failed");
        out
    }

    /// Decompresses trusted bytes, panicking on corrupt input — use
    /// [`ColumnCodec::try_decompress_into`] for untrusted bytes.
    // ANALYZER-ALLOW(no-panic): documented panicking convenience wrapper;
    // the try_ twin above is the fallible path.
    fn decompress(&self, bytes: &[u8], count: usize) -> Vec<f64> {
        let mut out = Vec::new();
        self.try_decompress_into(bytes, count, &mut out, &mut Scratch::new())
            .expect("corrupt compressed stream");
        out
    }
}

/// Bit-exact comparison shared by the verification paths.
pub(crate) fn verify_lossless(
    codec: &'static str,
    data: &[f64],
    back: &[f64],
) -> Result<(), CoreError> {
    if data.len() != back.len() {
        return Err(CoreError::LengthMismatch { codec, expected: data.len(), actual: back.len() });
    }
    for (index, (a, b)) in data.iter().zip(back).enumerate() {
        if a.to_bits() != b.to_bits() {
            return Err(CoreError::NotLossless { codec, index });
        }
    }
    Ok(())
}
