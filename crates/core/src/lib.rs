//! The workspace's single compressor abstraction.
//!
//! Every compression scheme in the evaluation — the seven baseline float
//! codecs, ALP itself, the LWC+ALP cascade, and both GPZip modes — implements
//! one trait, [`ColumnCodec`], and is reachable through one table, the
//! [`Registry`]. Consumers (the benchmark harness, the CLI, the `vectorq`
//! query engine, the corruption test suite) iterate the registry instead of
//! keeping hand-maintained scheme lists; adding a codec means one impl plus
//! one registry line, which the `registry-sync` analyzer rule keeps in sync.
//!
//! The trait is built around **caller-owned scratch buffers**: compression
//! and decompression write into `&mut Vec` outputs and stage through a
//! [`Scratch`] the caller reuses across calls, so hot loops perform no
//! per-vector heap allocation once the buffers are warm.
//!
//! [`container`] adds a registry-keyed, checksummed byte envelope so any
//! codec's output can be stored and re-identified without per-codec framing
//! code.

#![forbid(unsafe_code)]

pub mod codec;
pub mod container;
pub mod error;
pub mod impls;
pub mod ingest;
pub mod par;
pub mod registry;
pub mod scan;
pub mod scratch;

pub use codec::{Capabilities, ColumnCodec};
pub use container::{
    try_read_container_into, try_read_container_salvaged, write_container,
    write_container_with_parity, Container, ContainerSalvage,
};
pub use error::CoreError;
pub use registry::{Registry, SPEED_IDS, TABLE4_IDS};
pub use scan::{scan_values, ScanAgg, ScanPredicate, ScanResult, Validity};
pub use scratch::Scratch;
