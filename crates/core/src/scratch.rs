//! Shared decode/encode staging buffers.

/// Caller-owned scratch space threaded through every [`crate::ColumnCodec`]
/// call. Construct once, reuse across columns and codecs — the buffers grow
/// to a high-water mark and then make every subsequent call allocation-free.
pub struct Scratch {
    /// Per-value codec staging (bit words, PDE/FPC state).
    pub codecs: codecs::DecodeScratch,
    /// Raw little-endian byte staging for the byte-stream codecs (GPZip).
    pub bytes: Vec<u8>,
    /// Compressed-byte staging used by default size/verify measurements.
    pub stage: Vec<u8>,
    /// Decoded-value staging for roundtrip verification.
    pub floats: Vec<f64>,
}

impl Scratch {
    /// Fresh scratch space (empty buffers; they warm up with use).
    pub fn new() -> Self {
        Self {
            codecs: codecs::DecodeScratch::new(),
            bytes: Vec::new(),
            stage: Vec::new(),
            floats: Vec::new(),
        }
    }
}

impl Default for Scratch {
    fn default() -> Self {
        Self::new()
    }
}
