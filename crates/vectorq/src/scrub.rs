//! `vectorq::scrub` — the background scrubber (DESIGN.md §16).
//!
//! Quarantine contains damage; the scrubber is the path back. A scrub pass
//! walks the store's quarantined pages on the shared morsel scheduler
//! ([`alp_core::par::run_morsels_governed`]), re-decodes each one through the
//! same fallible path queries use, and atomically un-quarantines the pages
//! that decode cleanly again — so a fault that was transient, or has since
//! been repaired out-of-band (e.g. by rewriting the backing file through the
//! parity repair path), stops costing rows. Pages that still fail keep their
//! original verdict; a panic during re-verification is contained at the
//! morsel boundary exactly like a query-time panic.
//!
//! Un-quarantining follows the inverse publication order of quarantining
//! (reason removed and cache invalidated *before* the flag's `Release`
//! store), so queries racing a scrub pass observe each page either fully
//! quarantined or fully healthy — results transition partial → complete and
//! never regress.
//!
//! Scrub passes are deadline-governed: the [`CancelToken`] is consulted at
//! every morsel boundary, so an expired deadline leaves unchecked pages for
//! the next pass instead of blocking queries behind maintenance.

use std::time::Duration;

use alp_core::par::{run_morsels_governed, CancelToken};

use crate::service::{PageCtx, Store};

/// Knobs for one scrub pass.
#[derive(Debug, Clone, Copy, Default)]
pub struct ScrubOptions {
    /// Give up after this long; pages not yet checked stay quarantined and
    /// are picked up by the next pass.
    pub deadline: Option<Duration>,
    /// Worker threads for the pass; defaults to the service's setting.
    pub threads: Option<usize>,
}

/// What one scrub pass did.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ScrubReport {
    /// Quarantined pages re-verified this pass.
    pub pages_checked: usize,
    /// Pages that decoded cleanly and were un-quarantined.
    pub pages_repaired: usize,
    /// Pages that failed re-verification and stay quarantined.
    pub pages_still_bad: usize,
    /// Whether the pass was abandoned at a morsel boundary (deadline or
    /// explicit cancel); unchecked pages stay quarantined.
    pub cancelled: bool,
}

impl ScrubReport {
    /// Whether the store held no quarantined pages when the pass started.
    pub fn nothing_to_do(&self) -> bool {
        self.pages_checked == 0 && !self.cancelled
    }
}

/// Runs one scrub pass over `store`'s quarantined pages on up to `threads`
/// morsel-claiming workers (one page = one morsel). Counters accumulate on
/// the store, so [`crate::service::LossReport`]s carry the scrub history.
pub fn scrub_store(store: &Store, threads: usize, token: &CancelToken) -> ScrubReport {
    let bad = store.quarantined_pages();
    if bad.is_empty() {
        return ScrubReport::default();
    }
    let run = run_morsels_governed(threads.max(1), bad.len(), token, PageCtx::new, |ctx, i| {
        let Some(&page) = bad.get(i) else { return false };
        match store.verify_page(page, ctx) {
            Ok(()) => {
                store.unquarantine(page);
                true
            }
            // The page is still bad; its first-observed verdict stands.
            Err(_) => false,
        }
    });
    let repaired = run.completed.iter().filter(|(_, clean)| *clean).count();
    // A panicked verification counts as checked-and-still-bad: the governed
    // runner contained it and the page never left quarantine.
    let checked = run.completed.len() + run.failures.len();
    store.note_scrub(checked as u64, repaired as u64);
    ScrubReport {
        pages_checked: checked,
        pages_repaired: repaired,
        pages_still_bad: checked - repaired,
        cancelled: run.cancelled,
    }
}

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use super::*;
    use crate::cache::CacheConfig;
    use crate::service::PoisonPlan;
    use crate::{Column, Format};

    fn sample(n: usize) -> Vec<f64> {
        (0..n).map(|i| ((i % 5000) as f64) / 100.0).collect()
    }

    fn poisoned_store(seed: u64) -> (Arc<Store>, Vec<usize>) {
        let column = Column::from_f64(&sample(800_000), Format::alp());
        let poison = PoisonPlan::seeded(seed);
        let store = Arc::new(Store::with_poison(column, CacheConfig::default_config(), poison));
        let bad: Vec<usize> = (0..store.pages()).filter(|p| poison.poisons(*p)).collect();
        (store, bad)
    }

    #[test]
    fn a_clean_store_has_nothing_to_scrub() {
        let column = Column::from_f64(&sample(100_000), Format::alp());
        let store = Store::new(column, CacheConfig::default_config());
        let report = scrub_store(&store, 4, &CancelToken::new());
        assert!(report.nothing_to_do());
        assert_eq!(report, ScrubReport::default());
        assert_eq!(store.scrub_totals(), (0, 0));
    }

    #[test]
    fn persistent_faults_stay_quarantined_through_a_scrub() {
        let (store, expected_bad) = poisoned_store(1);
        assert!(!expected_bad.is_empty());
        for &p in &expected_bad {
            store.quarantine_for_test(p);
        }
        // Not healed: every page still fires its injected fault — including
        // the panic kind, which the governed runner must contain.
        for threads in [1, 4] {
            let report = scrub_store(&store, threads, &CancelToken::new());
            assert_eq!(report.pages_checked, expected_bad.len());
            assert_eq!(report.pages_repaired, 0);
            assert_eq!(report.pages_still_bad, expected_bad.len());
            assert!(!report.cancelled);
            assert_eq!(store.quarantined_pages(), expected_bad);
        }
    }

    #[test]
    fn healed_faults_are_unquarantined_with_reason_and_cache_cleared() {
        let (store, expected_bad) = poisoned_store(1);
        for &p in &expected_bad {
            store.quarantine_for_test(p);
            assert!(store.loss_reason(p).is_some());
        }
        store.heal_poison();
        let report = scrub_store(&store, 4, &CancelToken::new());
        assert_eq!(report.pages_checked, expected_bad.len());
        assert_eq!(report.pages_repaired, expected_bad.len());
        assert_eq!(report.pages_still_bad, 0);
        assert!(store.quarantined_pages().is_empty());
        for &p in &expected_bad {
            assert_eq!(store.loss_reason(p), None, "page {p} must not keep a stale verdict");
        }
        assert_eq!(store.scrub_totals(), (expected_bad.len() as u64, expected_bad.len() as u64));
    }

    #[test]
    fn an_expired_deadline_abandons_the_pass_without_repairing() {
        let (store, expected_bad) = poisoned_store(1);
        for &p in &expected_bad {
            store.quarantine_for_test(p);
        }
        store.heal_poison();
        let token = CancelToken::new();
        token.cancel();
        let report = scrub_store(&store, 2, &token);
        assert!(report.cancelled);
        assert_eq!(report.pages_checked, 0);
        assert_eq!(store.quarantined_pages(), expected_bad, "unchecked pages stay quarantined");
    }
}
