//! `vectorq::cache` — a bounded LRU cache of decompressed pages for the
//! query service.
//!
//! The cache holds `Arc<Vec<f64>>` pages so concurrent queries share one
//! decoded copy without lifetime gymnastics: a query that hits keeps its
//! `Arc` alive for exactly as long as it scans, even if the page is evicted
//! mid-scan. Two independent ceilings bound the cache — an entry count and a
//! hard byte budget — and it **degrades instead of growing**: a page that
//! cannot be admitted (budget zero, or the page alone exceeds the budget) is
//! counted as a bypass and the query streams from its private buffer. The
//! byte ceiling is enforced on every insert (evicting least-recently-used
//! pages first), so `bytes_peak` can never exceed `max_bytes` — the service
//! test suite asserts exactly that under concurrent load.
//!
//! All counters are relaxed atomics: they are observability, not
//! synchronization. The map itself sits behind one `Mutex`, which is cheap at
//! page granularity (one lock round-trip per ~100k-row page, not per value).

use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

use fastlanes::VECTOR_SIZE;

/// Sizing knobs for the service's page cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Maximum number of cached pages. `0` disables caching entirely (every
    /// lookup is a bypass).
    pub max_entries: usize,
    /// Rows per cache page. Rounded up to a whole number of 1024-value
    /// vectors; pages are the unit of decode, quarantine, and parallelism.
    pub page_size_rows: usize,
    /// Hard memory ceiling for cached payloads, in bytes. Inserts evict
    /// least-recently-used pages until the new page fits; a page larger than
    /// the whole budget is bypassed, never admitted.
    pub max_bytes: usize,
}

impl CacheConfig {
    /// Defaults matching the paper's row-group geometry: 100-vector pages,
    /// 256 entries, a 64 MiB byte ceiling.
    pub fn default_config() -> Self {
        Self { max_entries: 256, page_size_rows: 100 * VECTOR_SIZE, max_bytes: 64 << 20 }
    }

    /// Rows per page, normalized to at least one whole vector.
    pub fn rows_per_page(&self) -> usize {
        let rows = self.page_size_rows.max(1);
        rows.div_ceil(VECTOR_SIZE) * VECTOR_SIZE
    }
}

impl Default for CacheConfig {
    fn default() -> Self {
        Self::default_config()
    }
}

/// Point-in-time snapshot of the cache's counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups served from a cached page.
    pub hits: u64,
    /// Lookups that found nothing cached.
    pub misses: u64,
    /// Pages evicted to make room.
    pub evictions: u64,
    /// Pages that could not be admitted (cache disabled or page larger than
    /// the byte budget) — the query streamed without caching.
    pub bypasses: u64,
    /// Pages currently resident.
    pub entries: usize,
    /// Payload bytes currently resident.
    pub bytes: usize,
    /// High-water mark of resident payload bytes.
    pub bytes_peak: usize,
}

struct Slot {
    values: Arc<Vec<f64>>,
    bytes: usize,
    tick: u64,
}

struct Inner {
    /// page index → resident slot.
    map: HashMap<usize, Slot>,
    /// LRU order: monotone tick → page index. Ticks are unique, so this is a
    /// total order; the first entry is the coldest page.
    lru: BTreeMap<u64, usize>,
    next_tick: u64,
    bytes: usize,
    bytes_peak: usize,
}

/// Bounded, shared LRU cache of decompressed pages. See the module docs for
/// the degrade-don't-grow contract.
pub struct PageCache {
    max_entries: usize,
    max_bytes: usize,
    inner: Mutex<Inner>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    bypasses: AtomicU64,
}

impl PageCache {
    /// Builds an empty cache with the given ceilings.
    pub fn new(config: &CacheConfig) -> Self {
        Self {
            max_entries: config.max_entries,
            max_bytes: config.max_bytes,
            inner: Mutex::new(Inner {
                map: HashMap::new(),
                lru: BTreeMap::new(),
                next_tick: 0,
                bytes: 0,
                bytes_peak: 0,
            }),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            bypasses: AtomicU64::new(0),
        }
    }

    /// Never block on a poisoned lock: the critical sections below cannot
    /// panic, but a defensive service layer does not let a poisoned mutex
    /// take the whole store down with it.
    fn lock(&self) -> MutexGuard<'_, Inner> {
        match self.inner.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Looks up page `page`, refreshing its recency on a hit.
    pub fn get(&self, page: usize) -> Option<Arc<Vec<f64>>> {
        let mut inner = self.lock();
        let tick = inner.next_tick;
        inner.next_tick += 1;
        if let Some(slot) = inner.map.get_mut(&page) {
            let old = slot.tick;
            slot.tick = tick;
            let values = Arc::clone(&slot.values);
            inner.lru.remove(&old);
            inner.lru.insert(tick, page);
            drop(inner);
            self.hits.fetch_add(1, Ordering::Relaxed);
            Some(values)
        } else {
            drop(inner);
            self.misses.fetch_add(1, Ordering::Relaxed);
            None
        }
    }

    /// Whether a page of `bytes` payload bytes could be admitted at all —
    /// the lock-free pre-check of [`PageCache::insert`]'s bypass condition.
    /// The service consults this to predict a bypass *before* decoding: a
    /// page that would bypass is scanned fused instead of materialized, since
    /// caching its decoded form is impossible anyway.
    pub fn would_admit(&self, bytes: usize) -> bool {
        self.max_entries != 0 && bytes <= self.max_bytes
    }

    /// Tries to admit `values` as page `page`, evicting cold pages until both
    /// ceilings hold. Returns `false` (a bypass) when the page cannot be
    /// admitted at any eviction cost; the caller keeps streaming from its own
    /// buffer. Inserting a page that is already resident refreshes it.
    pub fn insert(&self, page: usize, values: Arc<Vec<f64>>) -> bool {
        let bytes = values.len().saturating_mul(core::mem::size_of::<f64>());
        if !self.would_admit(bytes) {
            self.bypasses.fetch_add(1, Ordering::Relaxed);
            return false;
        }
        let mut inner = self.lock();
        let tick = inner.next_tick;
        inner.next_tick += 1;
        if let Some(old) = inner.map.remove(&page) {
            inner.lru.remove(&old.tick);
            inner.bytes -= old.bytes;
        }
        // Evict coldest-first until the new page fits under both ceilings.
        let mut evicted = 0u64;
        while inner.map.len() >= self.max_entries
            || inner.bytes.saturating_add(bytes) > self.max_bytes
        {
            match inner.lru.pop_first() {
                Some((_, cold)) => {
                    if let Some(slot) = inner.map.remove(&cold) {
                        inner.bytes -= slot.bytes;
                    }
                    evicted += 1;
                }
                None => break,
            }
        }
        inner.map.insert(page, Slot { values, bytes, tick });
        inner.lru.insert(tick, page);
        inner.bytes += bytes;
        inner.bytes_peak = inner.bytes_peak.max(inner.bytes);
        drop(inner);
        if evicted > 0 {
            self.evictions.fetch_add(evicted, Ordering::Relaxed);
        }
        true
    }

    /// Drops page `page` if resident (used when a page is quarantined: a
    /// cached copy of a page later found bad must not outlive the verdict).
    pub fn invalidate(&self, page: usize) {
        let mut inner = self.lock();
        if let Some(slot) = inner.map.remove(&page) {
            inner.lru.remove(&slot.tick);
            inner.bytes -= slot.bytes;
        }
    }

    /// Snapshot of all counters.
    pub fn stats(&self) -> CacheStats {
        let inner = self.lock();
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            bypasses: self.bypasses.load(Ordering::Relaxed),
            entries: inner.map.len(),
            bytes: inner.bytes,
            bytes_peak: inner.bytes_peak,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn page(n: usize) -> Arc<Vec<f64>> {
        Arc::new(vec![1.0; n])
    }

    fn cache(max_entries: usize, max_bytes: usize) -> PageCache {
        PageCache::new(&CacheConfig { max_entries, page_size_rows: VECTOR_SIZE, max_bytes })
    }

    #[test]
    fn hits_and_misses_are_counted() {
        let c = cache(4, 1 << 20);
        assert!(c.get(0).is_none());
        assert!(c.insert(0, page(8)));
        assert!(c.get(0).is_some());
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.entries), (1, 1, 1));
    }

    #[test]
    fn entry_ceiling_evicts_least_recently_used() {
        let c = cache(2, 1 << 20);
        c.insert(0, page(4));
        c.insert(1, page(4));
        c.get(0); // page 1 is now coldest
        c.insert(2, page(4));
        assert!(c.get(0).is_some());
        assert!(c.get(1).is_none(), "coldest page should have been evicted");
        assert!(c.get(2).is_some());
        assert_eq!(c.stats().evictions, 1);
    }

    #[test]
    fn byte_ceiling_is_never_exceeded() {
        // 100 f64 = 800 bytes per page; ceiling fits two pages.
        let c = cache(64, 1700);
        for p in 0..10 {
            c.insert(p, page(100));
            let s = c.stats();
            assert!(s.bytes <= 1700, "resident {} > ceiling", s.bytes);
        }
        let s = c.stats();
        assert!(s.bytes_peak <= 1700);
        assert_eq!(s.entries, 2);
        assert_eq!(s.evictions, 8);
    }

    #[test]
    fn oversized_pages_bypass_instead_of_evicting_the_world() {
        let c = cache(8, 800);
        c.insert(0, page(50));
        assert!(!c.insert(1, page(200)), "1600-byte page cannot fit an 800-byte budget");
        let s = c.stats();
        assert_eq!(s.bypasses, 1);
        assert_eq!(s.entries, 1, "resident pages must survive a bypass");
    }

    #[test]
    fn zero_entry_cache_bypasses_everything() {
        let c = cache(0, 1 << 20);
        assert!(!c.insert(0, page(4)));
        assert!(c.get(0).is_none());
        assert_eq!(c.stats().bypasses, 1);
    }

    #[test]
    fn invalidate_drops_the_page_and_its_bytes() {
        let c = cache(4, 1 << 20);
        c.insert(0, page(100));
        c.invalidate(0);
        let s = c.stats();
        assert_eq!((s.entries, s.bytes), (0, 0));
        assert!(c.get(0).is_none());
    }

    #[test]
    fn reinserting_a_resident_page_refreshes_it() {
        let c = cache(2, 1 << 20);
        c.insert(0, page(4));
        c.insert(1, page(4));
        c.insert(0, page(6)); // refresh: page 1 is now coldest
        c.insert(2, page(4));
        assert!(c.get(0).is_some());
        assert!(c.get(1).is_none());
        assert_eq!(c.get(0).map(|v| v.len()), Some(6));
    }

    #[test]
    fn page_rows_normalize_to_whole_vectors() {
        let cfg = CacheConfig { max_entries: 1, page_size_rows: 1500, max_bytes: 1 };
        assert_eq!(cfg.rows_per_page(), 2 * VECTOR_SIZE);
        assert_eq!(CacheConfig { page_size_rows: 0, ..cfg }.rows_per_page(), VECTOR_SIZE);
    }
}
