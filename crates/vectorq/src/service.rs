//! `vectorq::service` — a concurrent query service over one shared,
//! immutable [`Column`], built to degrade instead of dying (DESIGN.md §12).
//!
//! The moving parts, and the failure each one absorbs:
//!
//! * **[`Store`]** — the column plus per-page quarantine flags and a bounded
//!   [`PageCache`]. Pages are the unit of decode, caching, quarantine, and
//!   parallelism (one page = one morsel).
//! * **Admission control** — at most `max_concurrent` queries run and at most
//!   `max_queued` wait; the next caller gets a typed
//!   [`ServiceError::Overloaded`] with a retry hint derived from recent query
//!   durations, instead of an unbounded queue.
//! * **Deadlines** — each query carries a [`CancelToken`]; workers check it
//!   at every morsel boundary, so an expired deadline abandons unclaimed
//!   pages and returns [`ServiceError::DeadlineExceeded`] without ever
//!   interrupting a kernel mid-decode.
//! * **Quarantine-and-continue** — a page that fails decode, or poisons a
//!   worker with a panic (contained by [`run_morsels_governed`]'s seam), is
//!   quarantined in the store; the query returns a **partial result** with a
//!   [`LossReport`] naming the lost pages, and every later query skips them
//!   without re-decoding.
//!
//! Results are deterministic: per-page partials are reduced in page order on
//! the caller's thread, so a query over an unpoisoned store returns
//! bit-identical sums at every thread count and cache state.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

use alp::io::{fault_seed, splitmix64};
use alp_core::par::{resolve_threads, run_morsels_governed, CancelToken};
use alp_core::Scratch;
use fastlanes::VECTOR_SIZE;

use crate::cache::{CacheConfig, CacheStats, PageCache};
use crate::scrub::{ScrubOptions, ScrubReport};
use crate::{accumulate, Column, FilteredSum};

// ---------------------------------------------------------------------------
// Errors and reports
// ---------------------------------------------------------------------------

/// Why the service refused or abandoned a query. Queries never panic and are
/// never silently dropped — every refusal is one of these.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServiceError {
    /// The run and wait queues are both full. Retry after roughly
    /// `retry_after_hint` (an exponentially-weighted average of recent query
    /// durations — the expected time for a slot to free up).
    Overloaded {
        /// Suggested client back-off before retrying.
        retry_after_hint: Duration,
    },
    /// The query's deadline expired — while queued, or mid-run at a morsel
    /// boundary. Work already done (including quarantine verdicts) is kept.
    DeadlineExceeded {
        /// Time spent before the service gave up.
        elapsed: Duration,
    },
}

impl core::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::Overloaded { retry_after_hint } => {
                write!(f, "service overloaded; retry after ~{retry_after_hint:?}")
            }
            Self::DeadlineExceeded { elapsed } => {
                write!(f, "query deadline exceeded after {elapsed:?}")
            }
        }
    }
}

impl std::error::Error for ServiceError {}

/// Why a page's rows are missing from a query result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LossReason {
    /// The page was already quarantined by an earlier query; it was skipped
    /// without touching its payload.
    Quarantined,
    /// Decoding the page's payload failed with a typed error.
    Decode(String),
    /// The page panicked a worker; the panic was contained at the morsel
    /// boundary and the page quarantined.
    Poisoned(String),
}

impl core::fmt::Display for LossReason {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::Quarantined => write!(f, "previously quarantined"),
            Self::Decode(e) => write!(f, "decode failed: {e}"),
            Self::Poisoned(e) => write!(f, "worker poisoned: {e}"),
        }
    }
}

/// One page missing from a query result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PageLoss {
    /// Page index within the store.
    pub page: usize,
    /// Rows the page would have contributed.
    pub rows: usize,
    /// Why the page is missing.
    pub reason: LossReason,
}

/// Which pages a query could not serve. An empty report means the result is
/// complete; a non-empty one means the result is a partial over the healthy
/// pages — the paper-faithful aggregate minus `rows_lost()` rows.
///
/// The report also carries the store's cumulative scrub history (DESIGN.md
/// §16), so a caller watching results transition partial→complete can see
/// the repairs that drove the transition.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct LossReport {
    /// Lost pages, sorted by page index.
    pub pages: Vec<PageLoss>,
    /// Quarantined pages re-verified by scrub passes over the store's
    /// lifetime, snapshotted when the query completed.
    pub scrub_checked: u64,
    /// Pages un-quarantined by scrub passes over the store's lifetime.
    pub scrub_repaired: u64,
}

impl LossReport {
    /// Whether every page was served.
    pub fn is_complete(&self) -> bool {
        self.pages.is_empty()
    }

    /// Total rows missing from the result.
    pub fn rows_lost(&self) -> usize {
        self.pages.iter().map(|p| p.rows).sum()
    }
}

/// A completed (possibly partial) query.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryResult {
    /// The aggregate over every healthy page.
    pub value: FilteredSum,
    /// Pages scanned in the compressed domain — the fused
    /// unpack→FOR→patch→predicate→aggregate path, chosen on a predicted
    /// cache bypass (and never when [`QueryOptions::no_fused`] is set).
    pub pages_fused: usize,
    /// Pages scanned from a materialized buffer: cache hits, plus misses
    /// whose decoded page was worth admitting for later queries.
    pub pages_materialized: usize,
    /// Pages that could not be served; empty for a complete result.
    pub loss: LossReport,
    /// Wall-clock time inside the service (queueing included).
    pub elapsed: Duration,
}

// ---------------------------------------------------------------------------
// Fault injection
// ---------------------------------------------------------------------------

/// What an injected page fault does to the touching query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PoisonKind {
    /// Panic inside the worker (contained at the morsel boundary).
    Panic,
    /// Fail with a typed decode error.
    Corrupt,
}

/// Deterministic bad-page injection for the robustness suites: a pure
/// function of `(seed, page)` through the same [`splitmix64`] mixer as the
/// I/O fault layer, so a seed reproduces the exact same poisoned pages on
/// every run and thread count. Seed `0` injects nothing (production).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoisonPlan {
    seed: u64,
}

impl PoisonPlan {
    /// No injection — every page is healthy.
    pub fn none() -> Self {
        Self { seed: 0 }
    }

    /// Poisons a deterministic ~25% of pages derived from `seed`.
    pub fn seeded(seed: u64) -> Self {
        Self { seed }
    }

    /// Seeds from `ALP_FAULT_SEED` (no injection when unset), mirroring the
    /// I/O fault layer's environment contract.
    pub fn from_env() -> Self {
        Self::seeded(fault_seed(0))
    }

    /// Whether `page` is poisoned under this plan — public so tests can
    /// compute the expected quarantine set for any seed.
    pub fn poisons(&self, page: usize) -> bool {
        self.decide(page).is_some()
    }

    fn decide(&self, page: usize) -> Option<PoisonKind> {
        if self.seed == 0 {
            return None;
        }
        let r = splitmix64(self.seed ^ (page as u64).wrapping_add(1));
        if !r.is_multiple_of(4) {
            return None;
        }
        Some(if (r >> 8) & 1 == 0 { PoisonKind::Panic } else { PoisonKind::Corrupt })
    }
}

// ---------------------------------------------------------------------------
// Store
// ---------------------------------------------------------------------------

/// A shared, immutable column prepared for concurrent service: page
/// geometry, quarantine flags, the bounded page cache, and (in the fault
/// suites) a poison plan. `Store` is `Sync`; queries borrow it concurrently.
pub struct Store {
    column: Column,
    rows: usize,
    vectors: usize,
    vectors_per_page: usize,
    pages: usize,
    /// One flag per page; set when the page fails decode or poisons a
    /// worker, cleared only by a scrub pass that re-verified the page
    /// decodes cleanly (see [`Store::unquarantine`]).
    quarantined: Vec<AtomicBool>,
    /// First-observed quarantine reason per page, for reporting.
    reasons: Mutex<BTreeMap<usize, LossReason>>,
    cache: PageCache,
    poison: PoisonPlan,
    /// When set, the injected fault plan stops firing — models the faulty
    /// medium having been repaired out-of-band (e.g. the backing file
    /// rewritten through the parity repair path), so scrub recovery is
    /// deterministic in the fault suites. Production stores (seed 0) never
    /// poison and are unaffected.
    healed: AtomicBool,
    /// Cumulative quarantined pages re-verified by scrub passes.
    scrub_checked: AtomicU64,
    /// Cumulative pages un-quarantined by scrub passes.
    scrub_repaired: AtomicU64,
}

impl Store {
    /// Wraps `column` for service with the given cache sizing.
    pub fn new(column: Column, cache: CacheConfig) -> Self {
        Self::with_poison(column, cache, PoisonPlan::none())
    }

    /// Like [`Store::new`] with deterministic bad-page injection — the
    /// robustness suites' entry point.
    pub fn with_poison(column: Column, cache: CacheConfig, poison: PoisonPlan) -> Self {
        let rows = column.len();
        let vectors = column.zone_maps().len();
        let vectors_per_page = (cache.rows_per_page() / VECTOR_SIZE).max(1);
        let pages = vectors.div_ceil(vectors_per_page);
        let quarantined = (0..pages).map(|_| AtomicBool::new(false)).collect();
        Self {
            column,
            rows,
            vectors,
            vectors_per_page,
            pages,
            quarantined,
            reasons: Mutex::new(BTreeMap::new()),
            cache: PageCache::new(&cache),
            poison,
            healed: AtomicBool::new(false),
            scrub_checked: AtomicU64::new(0),
            scrub_repaired: AtomicU64::new(0),
        }
    }

    /// The wrapped column.
    pub fn column(&self) -> &Column {
        &self.column
    }

    /// Number of cache/quarantine pages.
    pub fn pages(&self) -> usize {
        self.pages
    }

    /// Rows covered by page `page` (the last page may be short).
    pub fn page_rows(&self, page: usize) -> usize {
        let per_page = self.vectors_per_page * VECTOR_SIZE;
        let start = page.saturating_mul(per_page).min(self.rows);
        let end = start.saturating_add(per_page).min(self.rows);
        end - start
    }

    /// Pages currently quarantined, sorted.
    pub fn quarantined_pages(&self) -> Vec<usize> {
        // Acquire pairs with the Release store in `quarantine`: a flag seen
        // true guarantees the page's `LossReason` is already recorded.
        self.quarantined
            .iter()
            .enumerate()
            .filter(|(_, q)| q.load(Ordering::Acquire))
            .map(|(p, _)| p)
            .collect()
    }

    /// Snapshot of the page cache's counters.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    fn is_quarantined(&self, page: usize) -> bool {
        // Acquire pairs with the Release store in `quarantine` (see there).
        self.quarantined.get(page).map(|q| q.load(Ordering::Acquire)).unwrap_or(false)
    }

    /// Marks `page` bad: later queries skip it without touching its payload,
    /// and any cached copy is dropped (a verdict outlives the cache).
    fn quarantine(&self, page: usize, reason: LossReason) {
        // Publication order matters: the `LossReason` is recorded and the
        // cached copy invalidated *before* the flag flips, and the flag store
        // is `Release` paired with the `Acquire` loads in `is_quarantined` /
        // `quarantined_pages` / `loss_reason` — so any query that observes
        // the flag and skips the page is guaranteed to find the reason (and
        // never a stale cached payload) behind it.
        {
            let mut reasons = match self.reasons.lock() {
                Ok(g) => g,
                Err(poisoned) => poisoned.into_inner(),
            };
            reasons.entry(page).or_insert(reason);
        }
        self.cache.invalidate(page);
        if let Some(q) = self.quarantined.get(page) {
            q.store(true, Ordering::Release);
        }
    }

    /// The recorded verdict for a quarantined page, if any. The Acquire load
    /// pairs with `quarantine`'s Release store, so a `Some` flag implies the
    /// reason lookup cannot race with its insertion.
    pub fn loss_reason(&self, page: usize) -> Option<LossReason> {
        if !self.is_quarantined(page) {
            return None;
        }
        let reasons = match self.reasons.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        reasons.get(&page).cloned()
    }

    /// Clears `page`'s quarantine after a scrub pass re-verified it decodes
    /// cleanly (the scrubber is the only caller — queries never clear flags).
    ///
    /// Inverse publication order of [`Store::quarantine`]: the stale verdict
    /// is removed and any cached copy invalidated *before* the flag clears,
    /// and the flag store is `Release` paired with the same `Acquire` loads —
    /// so a query that observes the flag low decodes the page fresh and never
    /// finds a leftover reason (or payload) behind a healthy flag.
    pub(crate) fn unquarantine(&self, page: usize) {
        {
            let mut reasons = match self.reasons.lock() {
                Ok(g) => g,
                Err(poisoned) => poisoned.into_inner(),
            };
            reasons.remove(&page);
        }
        self.cache.invalidate(page);
        if let Some(q) = self.quarantined.get(page) {
            q.store(false, Ordering::Release);
        }
    }

    /// Stops the injected fault plan from firing: models the faulty medium
    /// having been repaired out-of-band (e.g. the backing file rewritten
    /// through the parity repair path), so a following scrub pass observes
    /// recovery deterministically. Idempotent; a no-op on production stores.
    pub fn heal_poison(&self) {
        self.healed.store(true, Ordering::Release);
    }

    /// The active poison verdict for `page`: the seeded plan's decision,
    /// unless the store has been healed.
    fn poison_verdict(&self, page: usize) -> Option<PoisonKind> {
        if self.healed.load(Ordering::Acquire) {
            return None;
        }
        self.poison.decide(page)
    }

    /// Re-verifies that `page` decodes cleanly end to end — the scrubber's
    /// probe. Walks every vector through the same fallible decode path
    /// queries use, bypassing the cache (a verdict must come from the
    /// payload, not a stale copy). An injected `Panic` fault fires here too:
    /// the governed scrub runner's containment seam absorbs it exactly like
    /// a query worker's.
    pub(crate) fn verify_page(&self, page: usize, ctx: &mut PageCtx) -> Result<(), LossReason> {
        match self.poison_verdict(page) {
            // ANALYZER-ALLOW(no-panic): deliberate fault injection — this is
            // the panic the governed scrub runner's containment seam exists
            // to absorb, enabled only by a nonzero poison seed.
            Some(PoisonKind::Panic) => panic!("injected page poison (page {page})"),
            Some(PoisonKind::Corrupt) => {
                return Err(LossReason::Decode(format!("injected corruption (page {page})")));
            }
            None => {}
        }
        let (v0, v1) = self.page_vectors(page);
        for v in v0..v1 {
            self.column
                .try_decompress_vector_at(v, &mut ctx.vec_buf, &mut ctx.scratch)
                .map_err(|e| LossReason::Decode(e.to_string()))?;
        }
        Ok(())
    }

    /// Test-only quarantine entry so the scrub suite can seed damage without
    /// running a full query first.
    #[cfg(test)]
    pub(crate) fn quarantine_for_test(&self, page: usize) {
        self.quarantine(page, LossReason::Decode(format!("seeded by test (page {page})")));
    }

    /// Accumulates one scrub pass's counters.
    pub(crate) fn note_scrub(&self, checked: u64, repaired: u64) {
        self.scrub_checked.fetch_add(checked, Ordering::Relaxed);
        self.scrub_repaired.fetch_add(repaired, Ordering::Relaxed);
    }

    /// Cumulative `(pages checked, pages repaired)` across every scrub pass.
    pub fn scrub_totals(&self) -> (u64, u64) {
        (self.scrub_checked.load(Ordering::Relaxed), self.scrub_repaired.load(Ordering::Relaxed))
    }

    /// Global vector range `[v0, v1)` covered by page `page`.
    fn page_vectors(&self, page: usize) -> (usize, usize) {
        let v0 = page.saturating_mul(self.vectors_per_page).min(self.vectors);
        let v1 = v0.saturating_add(self.vectors_per_page).min(self.vectors);
        (v0, v1)
    }

    /// Values in global vector `v` (the column's last vector may be short).
    fn vector_len(&self, v: usize) -> usize {
        self.rows.saturating_sub(v.saturating_mul(VECTOR_SIZE)).min(VECTOR_SIZE)
    }

    /// Scans a page's decoded values with zone-map pruning per vector.
    /// Accumulation order is fixed (vector order, then value order), so the
    /// partial is bit-identical whether the values came from the cache or a
    /// fresh decode.
    fn scan_page_values(
        &self,
        values: &[f64],
        v0: usize,
        v1: usize,
        lo: f64,
        hi: f64,
    ) -> FilteredSum {
        let mut part = FilteredSum::zero();
        let zones = self.column.zone_maps();
        let mut offset = 0usize;
        for v in v0..v1 {
            let len = self.vector_len(v);
            let (Some(zone), Some(slice)) = (zones.get(v), values.get(offset..offset + len)) else {
                break;
            };
            if zone.overlaps(lo, hi) {
                part.vectors_scanned += 1;
                accumulate(slice, lo, hi, &mut part);
            } else {
                part.vectors_skipped += 1;
            }
            offset += len;
        }
        part
    }

    /// Scans a page in the compressed domain: one fused
    /// unpack→FOR→patch→predicate→aggregate pass per overlapping vector,
    /// with no page buffer. `Ok(None)` means some vector had no fused kernel
    /// after all (the caller materializes); `Err` is a decode failure the
    /// caller quarantines, exactly like a materializing failure.
    fn scan_page_fused(
        &self,
        v0: usize,
        v1: usize,
        lo: f64,
        hi: f64,
        scratch: &mut Scratch,
    ) -> Result<Option<FilteredSum>, crate::VectorAccessError> {
        let mut part = FilteredSum::zero();
        let zones = self.column.zone_maps();
        for v in v0..v1 {
            let Some(zone) = zones.get(v) else { break };
            if !zone.overlaps(lo, hi) {
                part.vectors_skipped += 1;
                continue;
            }
            match self.column.try_scan_vector_fused(v, lo, hi, scratch)? {
                Some(scan) => {
                    part.vectors_scanned += 1;
                    part.sum += scan.sum;
                    part.matches += scan.matches;
                    part.valid += scan.valid_count();
                    part.invalid += scan.invalid_count();
                }
                None => return Ok(None),
            }
        }
        Ok(Some(part))
    }

    /// One morsel of a query: serve page `page` through the cache, decoding
    /// on a miss. Runs on a worker inside the governed runner, so an
    /// injected [`PoisonKind::Panic`] unwinds into the containment seam.
    ///
    /// The page is the decode unit: a miss inflates the whole page even when
    /// only some of its vectors overlap the predicate. Zone maps still prune
    /// at two levels — a fully-disjoint page is never decoded at all, and
    /// disjoint vectors inside a decoded page are skipped during the scan.
    ///
    /// Path selection on a miss: when the decoded page could never be
    /// admitted anyway ([`PageCache::would_admit`] predicts a bypass) and the
    /// storage has a fused kernel, the page is scanned in the compressed
    /// domain without materializing at all. Admitting misses still
    /// materialize and insert, so later queries hit a warm cache; cache hits
    /// scan the cached page. All three routes fold bit-identically.
    fn execute_page(
        &self,
        page: usize,
        lo: f64,
        hi: f64,
        no_fused: bool,
        ctx: &mut PageCtx,
    ) -> PageOutcome {
        if self.is_quarantined(page) {
            return PageOutcome::Skipped(LossReason::Quarantined);
        }
        let (v0, v1) = self.page_vectors(page);
        let zones = self.column.zone_maps();
        let overlapping =
            zones.get(v0..v1).map(|zs| zs.iter().any(|z| z.overlaps(lo, hi))).unwrap_or(false);
        if !overlapping {
            // A pruned page is never touched, so a poisoned-but-pruned page
            // cannot hurt this query (it will hurt the first query that
            // actually reads it).
            return PageOutcome::Pruned(v1 - v0);
        }
        match self.poison_verdict(page) {
            // ANALYZER-ALLOW(no-panic): deliberate fault injection — this is
            // the panic the governed runner's containment seam exists to
            // absorb, enabled only by a nonzero poison seed.
            Some(PoisonKind::Panic) => panic!("injected page poison (page {page})"),
            Some(PoisonKind::Corrupt) => {
                return PageOutcome::Skipped(LossReason::Decode(format!(
                    "injected corruption (page {page})"
                )));
            }
            None => {}
        }
        if let Some(values) = self.cache.get(page) {
            return PageOutcome::Scanned {
                part: self.scan_page_values(&values, v0, v1, lo, hi),
                fused: false,
            };
        }
        let page_bytes = self.page_rows(page).saturating_mul(core::mem::size_of::<f64>());
        if !no_fused && self.column.supports_fused_scan() && !self.cache.would_admit(page_bytes) {
            // Predicted bypass: caching the decoded page is impossible, so
            // materializing it buys nothing — scan fused instead.
            match self.scan_page_fused(v0, v1, lo, hi, &mut ctx.scratch) {
                Ok(Some(part)) => return PageOutcome::Scanned { part, fused: true },
                Ok(None) => {} // no fused kernel after all — materialize below
                Err(e) => return PageOutcome::Skipped(LossReason::Decode(e.to_string())),
            }
        }
        ctx.page_buf.clear();
        for v in v0..v1 {
            match self.column.try_decompress_vector_at(v, &mut ctx.vec_buf, &mut ctx.scratch) {
                Ok(_) => ctx.page_buf.extend_from_slice(&ctx.vec_buf),
                Err(e) => return PageOutcome::Skipped(LossReason::Decode(e.to_string())),
            }
        }
        let values = Arc::new(std::mem::take(&mut ctx.page_buf));
        let admitted = self.cache.insert(page, Arc::clone(&values));
        let part = self.scan_page_values(&values, v0, v1, lo, hi);
        if !admitted {
            // Cache bypass (degraded mode): reclaim the buffer so the worker
            // keeps streaming allocation-free.
            if let Ok(mut reclaimed) = Arc::try_unwrap(values) {
                reclaimed.clear();
                ctx.page_buf = reclaimed;
            }
        }
        PageOutcome::Scanned { part, fused: false }
    }
}

/// Per-worker query scratch: codec staging plus vector/page assembly buffers,
/// built once per worker and reused across every page it claims. Shared with
/// the scrubber ([`crate::scrub`]), whose workers re-verify pages through the
/// same decode path.
pub(crate) struct PageCtx {
    scratch: Scratch,
    vec_buf: Vec<f64>,
    page_buf: Vec<f64>,
}

impl PageCtx {
    pub(crate) fn new() -> Self {
        Self { scratch: Scratch::new(), vec_buf: Vec::new(), page_buf: Vec::new() }
    }
}

/// What one page morsel produced.
enum PageOutcome {
    /// Healthy page, scanned (possibly with some vectors zone-pruned);
    /// `fused` records whether the scan ran in the compressed domain.
    Scanned {
        /// The page's partial aggregate.
        part: FilteredSum,
        /// True for a compressed-domain (fused) scan, false for a scan of a
        /// materialized buffer.
        fused: bool,
    },
    /// Whole page zone-pruned without touching its payload (vector count).
    Pruned(usize),
    /// Page unavailable: quarantined earlier, or failed decode just now.
    Skipped(LossReason),
}

// ---------------------------------------------------------------------------
// Admission control
// ---------------------------------------------------------------------------

/// Service sizing knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServiceConfig {
    /// Queries allowed to run simultaneously.
    pub max_concurrent: usize,
    /// Queries allowed to wait for a slot; the next one is refused with
    /// [`ServiceError::Overloaded`].
    pub max_queued: usize,
    /// Worker threads per query (`0` = resolve from `ALP_THREADS` / the
    /// machine, like every other parallel entry point).
    pub threads: usize,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        Self { max_concurrent: 4, max_queued: 16, threads: 0 }
    }
}

struct GateState {
    active: usize,
    waiting: usize,
}

struct Gate {
    state: Mutex<GateState>,
    cv: Condvar,
    max_concurrent: usize,
    max_queued: usize,
}

impl Gate {
    fn lock(&self) -> MutexGuard<'_, GateState> {
        match self.state.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

/// An admitted query slot; releasing it (on drop) wakes one queued query.
/// Obtained from [`Service::admit`] — tests hold permits to drive the gate
/// into deterministic overload.
pub struct QueryPermit<'a> {
    gate: &'a Gate,
}

impl Drop for QueryPermit<'_> {
    fn drop(&mut self) {
        let mut st = self.gate.lock();
        st.active = st.active.saturating_sub(1);
        drop(st);
        self.gate.cv.notify_one();
    }
}

/// Per-query knobs.
#[derive(Debug, Clone, Copy, Default)]
pub struct QueryOptions {
    /// Give up (typed [`ServiceError::DeadlineExceeded`], never a hang) after
    /// this long — covering queue time and run time.
    pub deadline: Option<Duration>,
    /// Worker threads for this query; defaults to the service's setting.
    pub threads: Option<usize>,
    /// Disable the fused compressed-domain scan path: every miss
    /// materializes, even on a predicted cache bypass (the CLI's
    /// `--no-fused` escape hatch). Results are bit-identical either way —
    /// this only trades performance.
    pub no_fused: bool,
}

// ---------------------------------------------------------------------------
// Service
// ---------------------------------------------------------------------------

/// The concurrent query front door over one shared [`Store`].
pub struct Service {
    store: Arc<Store>,
    gate: Gate,
    threads: usize,
    /// EWMA of recent query durations in nanoseconds (0 = no data yet);
    /// feeds `Overloaded::retry_after_hint`.
    ewma_nanos: AtomicU64,
}

impl Service {
    /// Builds a service over `store`.
    pub fn new(store: Arc<Store>, config: ServiceConfig) -> Self {
        Self {
            store,
            gate: Gate {
                state: Mutex::new(GateState { active: 0, waiting: 0 }),
                cv: Condvar::new(),
                max_concurrent: config.max_concurrent.max(1),
                max_queued: config.max_queued,
            },
            threads: config.threads,
            ewma_nanos: AtomicU64::new(0),
        }
    }

    /// The shared store.
    pub fn store(&self) -> &Arc<Store> {
        &self.store
    }

    /// Claims a query slot without running anything — the admission primitive
    /// behind every query, public so tests can hold slots and observe a
    /// deterministic [`ServiceError::Overloaded`].
    pub fn admit(&self) -> Result<QueryPermit<'_>, ServiceError> {
        self.admit_until(None, Instant::now())
    }

    /// `SELECT sum(x), count(x) WHERE lo <= x <= hi` over every healthy page.
    ///
    /// Returns a complete result when no page is lost; a **partial** result
    /// with a non-empty [`LossReport`] when pages are quarantined, failed to
    /// decode, or poisoned a worker; or a typed [`ServiceError`] when the
    /// query was refused (overload) or abandoned (deadline). Never panics.
    pub fn sum_where(
        &self,
        lo: f64,
        hi: f64,
        opts: &QueryOptions,
    ) -> Result<QueryResult, ServiceError> {
        let started = Instant::now();
        let deadline_at = opts.deadline.and_then(|d| started.checked_add(d));
        let _permit = self.admit_until(deadline_at, started)?;
        let token = match deadline_at {
            Some(at) => {
                let now = Instant::now();
                if at <= now {
                    return Err(ServiceError::DeadlineExceeded { elapsed: started.elapsed() });
                }
                CancelToken::with_deadline(at - now)
            }
            None => CancelToken::new(),
        };
        let threads = match opts.threads.unwrap_or(self.threads) {
            0 => resolve_threads(None),
            t => t,
        };
        let store = &*self.store;
        let no_fused = opts.no_fused;
        let run =
            run_morsels_governed(threads, store.pages(), &token, PageCtx::new, |ctx, page| {
                store.execute_page(page, lo, hi, no_fused, ctx)
            });
        // Quarantine verdicts survive even an abandoned run: a page that
        // poisoned a worker must not get a second chance to do it again.
        let mut loss: Vec<PageLoss> = Vec::new();
        for f in &run.failures {
            store.quarantine(f.morsel, LossReason::Poisoned(f.message.clone()));
            loss.push(PageLoss {
                page: f.morsel,
                rows: store.page_rows(f.morsel),
                reason: LossReason::Poisoned(f.message.clone()),
            });
        }
        let mut value = FilteredSum::zero();
        let mut pages_fused = 0usize;
        let mut pages_materialized = 0usize;
        for (page, outcome) in run.completed {
            match outcome {
                PageOutcome::Scanned { part: p, fused } => {
                    // `completed` is sorted by page, so this reduction order —
                    // and therefore the floating-point sum — is independent of
                    // thread count and worker timing.
                    value.sum += p.sum;
                    value.matches += p.matches;
                    value.vectors_scanned += p.vectors_scanned;
                    value.vectors_skipped += p.vectors_skipped;
                    value.valid += p.valid;
                    value.invalid += p.invalid;
                    if fused {
                        pages_fused += 1;
                    } else {
                        pages_materialized += 1;
                    }
                }
                PageOutcome::Pruned(vectors) => value.vectors_skipped += vectors,
                PageOutcome::Skipped(reason) => {
                    if !matches!(reason, LossReason::Quarantined) {
                        store.quarantine(page, reason.clone());
                    }
                    loss.push(PageLoss { page, rows: store.page_rows(page), reason });
                }
            }
        }
        let elapsed = started.elapsed();
        self.note_duration(elapsed);
        if run.cancelled {
            return Err(ServiceError::DeadlineExceeded { elapsed });
        }
        loss.sort_by_key(|p| p.page);
        let (scrub_checked, scrub_repaired) = store.scrub_totals();
        Ok(QueryResult {
            value,
            pages_fused,
            pages_materialized,
            loss: LossReport { pages: loss, scrub_checked, scrub_repaired },
            elapsed,
        })
    }

    /// One background-scrubber pass (DESIGN.md §16): re-verifies every
    /// quarantined page through the same fallible decode path queries use and
    /// un-quarantines the pages that decode cleanly again, so later queries
    /// serve them with full results. Deadline-governed like a query — the
    /// token is checked at every morsel boundary, and an expired deadline
    /// leaves the remaining pages for the next pass. Scrubbing bypasses the
    /// admission gate (it is maintenance, not query load) and never panics.
    pub fn scrub_once(&self, opts: &ScrubOptions) -> ScrubReport {
        let token = match opts.deadline {
            Some(d) => CancelToken::with_deadline(d),
            None => CancelToken::new(),
        };
        let threads = match opts.threads.unwrap_or(self.threads) {
            0 => resolve_threads(None),
            t => t,
        };
        crate::scrub::scrub_store(&self.store, threads, &token)
    }

    /// Snapshot of the store's cache counters (for `bench_json` and the CLI).
    pub fn cache_stats(&self) -> CacheStats {
        self.store.cache_stats()
    }

    fn admit_until(
        &self,
        deadline: Option<Instant>,
        started: Instant,
    ) -> Result<QueryPermit<'_>, ServiceError> {
        let gate = &self.gate;
        let mut st = gate.lock();
        if st.active < gate.max_concurrent {
            st.active += 1;
            return Ok(QueryPermit { gate });
        }
        if st.waiting >= gate.max_queued {
            drop(st);
            return Err(ServiceError::Overloaded { retry_after_hint: self.retry_hint() });
        }
        st.waiting += 1;
        loop {
            st = match deadline {
                Some(at) => {
                    let now = Instant::now();
                    if now >= at {
                        st.waiting -= 1;
                        drop(st);
                        return Err(ServiceError::DeadlineExceeded { elapsed: started.elapsed() });
                    }
                    match gate.cv.wait_timeout(st, at - now) {
                        Ok((g, _)) => g,
                        Err(poisoned) => poisoned.into_inner().0,
                    }
                }
                None => match gate.cv.wait(st) {
                    Ok(g) => g,
                    Err(poisoned) => poisoned.into_inner(),
                },
            };
            if st.active < gate.max_concurrent {
                st.waiting -= 1;
                st.active += 1;
                return Ok(QueryPermit { gate });
            }
        }
    }

    fn note_duration(&self, elapsed: Duration) {
        let nanos = u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX);
        // One atomic step: a separate load/store pair would let a concurrent
        // completion's update vanish between the two halves (lost update).
        let _ = self.ewma_nanos.fetch_update(Ordering::Relaxed, Ordering::Relaxed, |old| {
            Some(if old == 0 { nanos } else { old - old / 8 + nanos / 8 })
        });
    }

    fn retry_hint(&self) -> Duration {
        match self.ewma_nanos.load(Ordering::Relaxed) {
            0 => Duration::from_millis(1),
            nanos => Duration::from_nanos(nanos),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Format;

    fn sample(n: usize) -> Vec<f64> {
        (0..n).map(|i| ((i % 5000) as f64) / 100.0).collect()
    }

    fn store(n: usize) -> Arc<Store> {
        let column = Column::from_f64(&sample(n), Format::alp());
        Arc::new(Store::new(column, CacheConfig::default_config()))
    }

    fn reference(data: &[f64], lo: f64, hi: f64) -> (f64, usize) {
        let matching = data.iter().filter(|x| **x >= lo && **x <= hi);
        (matching.clone().sum(), matching.count())
    }

    #[test]
    fn a_healthy_query_is_complete_and_matches_the_column_path() {
        let data = sample(250_000);
        let column = Column::from_f64(&data, Format::alp());
        let direct = column.sum_where(10.0, 20.0);
        let svc = Service::new(
            Arc::new(Store::new(column, CacheConfig::default_config())),
            ServiceConfig::default(),
        );
        let r = svc.sum_where(10.0, 20.0, &QueryOptions::default()).unwrap();
        assert!(r.loss.is_complete());
        assert_eq!(r.value.matches, direct.matches);
        assert_eq!(r.value.sum.to_bits(), direct.sum.to_bits());
    }

    #[test]
    fn repeated_queries_hit_the_cache_with_identical_results() {
        let svc = Service::new(store(300_000), ServiceConfig::default());
        let opts = QueryOptions { threads: Some(1), ..QueryOptions::default() };
        let first = svc.sum_where(5.0, 45.0, &opts).unwrap();
        let stats_cold = svc.cache_stats();
        let second = svc.sum_where(5.0, 45.0, &opts).unwrap();
        let stats_warm = svc.cache_stats();
        assert_eq!(first.value.sum.to_bits(), second.value.sum.to_bits());
        assert!(stats_cold.misses > 0);
        assert!(stats_warm.hits >= stats_cold.misses, "second pass should be all hits");
    }

    #[test]
    fn held_permits_drive_the_gate_into_typed_overload() {
        let svc = Service::new(
            store(VECTOR_SIZE * 4),
            ServiceConfig { max_concurrent: 1, max_queued: 0, threads: 1 },
        );
        let held = svc.admit().unwrap();
        let err = svc.sum_where(0.0, 1.0, &QueryOptions::default()).unwrap_err();
        assert!(matches!(err, ServiceError::Overloaded { .. }));
        drop(held);
        assert!(svc.sum_where(0.0, 1.0, &QueryOptions::default()).is_ok());
    }

    #[test]
    fn a_queued_query_times_out_with_deadline_exceeded() {
        let svc = Service::new(
            store(VECTOR_SIZE * 4),
            ServiceConfig { max_concurrent: 1, max_queued: 4, threads: 1 },
        );
        let _held = svc.admit().unwrap();
        let opts =
            QueryOptions { deadline: Some(Duration::from_millis(20)), ..QueryOptions::default() };
        let err = svc.sum_where(0.0, 1.0, &opts).unwrap_err();
        assert!(matches!(err, ServiceError::DeadlineExceeded { .. }));
    }

    #[test]
    fn an_expired_deadline_cancels_instead_of_hanging() {
        let svc = Service::new(store(500_000), ServiceConfig::default());
        let opts = QueryOptions { deadline: Some(Duration::ZERO), ..QueryOptions::default() };
        let err = svc.sum_where(f64::NEG_INFINITY, f64::INFINITY, &opts).unwrap_err();
        assert!(matches!(err, ServiceError::DeadlineExceeded { .. }));
    }

    #[test]
    fn poisoned_pages_quarantine_and_yield_partial_results() {
        let data = sample(800_000);
        let column = Column::from_f64(&data, Format::alp());
        let poison = PoisonPlan::seeded(1);
        let store = Arc::new(Store::with_poison(column, CacheConfig::default_config(), poison));
        let expected_bad: Vec<usize> = (0..store.pages()).filter(|p| poison.poisons(*p)).collect();
        assert!(!expected_bad.is_empty(), "seed 1 must poison at least one page for this test");
        let svc = Service::new(store, ServiceConfig::default());

        let r = svc.sum_where(f64::NEG_INFINITY, f64::INFINITY, &QueryOptions::default()).unwrap();
        let lost: Vec<usize> = r.loss.pages.iter().map(|p| p.page).collect();
        assert_eq!(lost, expected_bad, "exactly the poisoned pages are lost");
        assert_eq!(svc.store().quarantined_pages(), expected_bad);
        let lost_rows: usize = expected_bad.iter().map(|p| svc.store().page_rows(*p)).sum();
        assert_eq!(r.loss.rows_lost(), lost_rows);
        let (_, full_matches) = reference(&data, f64::NEG_INFINITY, f64::INFINITY);
        assert_eq!(r.value.matches, full_matches - lost_rows);

        // The second query skips quarantined pages without re-decoding them:
        // same partial, but every loss is now `Quarantined`.
        let r2 = svc.sum_where(f64::NEG_INFINITY, f64::INFINITY, &QueryOptions::default()).unwrap();
        assert_eq!(r2.value.sum.to_bits(), r.value.sum.to_bits());
        assert!(r2.loss.pages.iter().all(|p| p.reason == LossReason::Quarantined));
    }

    #[test]
    fn empty_columns_serve_empty_results() {
        let column = Column::from_f64(&[], Format::alp());
        let svc = Service::new(
            Arc::new(Store::new(column, CacheConfig::default_config())),
            ServiceConfig::default(),
        );
        let r = svc.sum_where(0.0, 1.0, &QueryOptions::default()).unwrap();
        assert!(r.loss.is_complete());
        assert_eq!(r.value.matches, 0);
    }

    #[test]
    fn concurrent_completion_notes_are_never_lost() {
        // `note_duration` must be one atomic step. The decay applied by a
        // zero-duration note, f(v) = v - v/8, is the same pure function for
        // every caller, and `fetch_update` serializes the applications — so
        // after seeding a large EWMA and hammering T threads × K notes, the
        // value must land *exactly* where T·K serial applications land. The
        // pre-fix load-then-store version drops updates under contention
        // (two threads read the same `old`), which leaves the value strictly
        // higher because fewer decays were applied.
        let svc = Service::new(store(VECTOR_SIZE), ServiceConfig::default());
        const SEED_NANOS: u64 = 1 << 50;
        const THREADS: usize = 4;
        const NOTES: usize = 40;
        svc.note_duration(Duration::from_nanos(SEED_NANOS));
        std::thread::scope(|s| {
            for _ in 0..THREADS {
                s.spawn(|| {
                    for _ in 0..NOTES {
                        svc.note_duration(Duration::ZERO);
                    }
                });
            }
        });
        let mut expect = SEED_NANOS;
        for _ in 0..THREADS * NOTES {
            expect -= expect / 8;
        }
        // (7/8)^160 · 2^50 ≈ 6·10^5 — far above the point where v/8 rounds
        // to zero, so every one of the 160 decays changes the value and any
        // lost update is observable.
        assert!(expect > 8);
        assert_eq!(svc.ewma_nanos.load(Ordering::Relaxed), expect);
    }

    #[test]
    fn bypass_misses_scan_fused_and_match_the_materializing_path() {
        let data = sample(400_000);
        let column = Column::from_f64(&data, Format::alp());
        // max_entries = 0: every miss is a predicted bypass → fused scan.
        let bypass = CacheConfig { max_entries: 0, ..CacheConfig::default_config() };
        let svc = Service::new(Arc::new(Store::new(column, bypass)), ServiceConfig::default());
        let fused = svc.sum_where(5.0, 45.0, &QueryOptions::default()).unwrap();
        assert!(fused.pages_fused > 0, "bypass misses must take the fused path");
        assert_eq!(fused.pages_materialized, 0);
        let opts = QueryOptions { no_fused: true, ..QueryOptions::default() };
        let mat = svc.sum_where(5.0, 45.0, &opts).unwrap();
        assert_eq!(mat.pages_fused, 0, "--no-fused must force materialization");
        assert!(mat.pages_materialized > 0);
        assert_eq!(fused.value.sum.to_bits(), mat.value.sum.to_bits());
        assert_eq!(fused.value, mat.value, "all counters agree across paths");
    }

    #[test]
    fn admitting_misses_still_materialize_and_warm_the_cache() {
        let svc = Service::new(store(300_000), ServiceConfig::default());
        let first = svc.sum_where(5.0, 45.0, &QueryOptions::default()).unwrap();
        assert_eq!(first.pages_fused, 0, "admitting misses materialize for reuse");
        assert!(first.pages_materialized > 0);
        let second = svc.sum_where(5.0, 45.0, &QueryOptions::default()).unwrap();
        assert!(svc.cache_stats().hits > 0, "second query should hit the warm cache");
        assert_eq!(first.value.sum.to_bits(), second.value.sum.to_bits());
    }

    #[test]
    fn validity_counts_agree_across_scan_paths() {
        let mut data = sample(200_000);
        for i in (0..data.len()).step_by(97) {
            data[i] = f64::NAN;
        }
        let column = Column::from_f64(&data, Format::alp());
        let bypass = CacheConfig { max_entries: 0, ..CacheConfig::default_config() };
        let svc = Service::new(Arc::new(Store::new(column, bypass)), ServiceConfig::default());
        let (lo, hi) = (f64::NEG_INFINITY, f64::INFINITY);
        let fused = svc.sum_where(lo, hi, &QueryOptions::default()).unwrap();
        let mat = svc
            .sum_where(lo, hi, &QueryOptions { no_fused: true, ..QueryOptions::default() })
            .unwrap();
        assert!(fused.pages_fused > 0);
        assert_eq!((fused.value.valid, fused.value.invalid), (mat.value.valid, mat.value.invalid));
        let nans = data.iter().filter(|x| x.is_nan()).count();
        // Every vector has a NaN (97 < 1024), so nothing is pruned and the
        // scanned-validity counts cover the whole column.
        assert_eq!(fused.value.invalid, nans);
        assert_eq!(fused.value.valid, data.len() - nans);
    }

    #[test]
    fn quarantine_flags_publish_their_loss_reason() {
        // `quarantine` records the reason *before* the Release store that
        // flips the flag, and `loss_reason` reads the flag with Acquire — so
        // a flag observed true always has a reason behind it.
        let data = sample(800_000);
        let column = Column::from_f64(&data, Format::alp());
        let store = Arc::new(Store::with_poison(
            column,
            CacheConfig::default_config(),
            PoisonPlan::seeded(1),
        ));
        let svc = Service::new(Arc::clone(&store), ServiceConfig::default());
        svc.sum_where(f64::NEG_INFINITY, f64::INFINITY, &QueryOptions::default()).unwrap();
        let bad = store.quarantined_pages();
        assert!(!bad.is_empty());
        for page in bad {
            assert!(
                store.loss_reason(page).is_some(),
                "quarantined page {page} must expose the verdict that condemned it"
            );
        }
        let healthy = (0..store.pages()).find(|p| !store.is_quarantined(*p)).unwrap();
        assert_eq!(store.loss_reason(healthy), None);
    }

    #[test]
    fn scrub_heals_transient_faults_and_restores_complete_results() {
        let data = sample(800_000);
        let poison = PoisonPlan::seeded(1);
        let store = Arc::new(Store::with_poison(
            Column::from_f64(&data, Format::alp()),
            CacheConfig::default_config(),
            poison,
        ));
        let svc = Service::new(Arc::clone(&store), ServiceConfig::default());
        let all = QueryOptions::default();

        let partial = svc.sum_where(f64::NEG_INFINITY, f64::INFINITY, &all).unwrap();
        assert!(!partial.loss.is_complete());
        let bad = store.quarantined_pages();
        assert!(!bad.is_empty());

        // The fault persists: a scrub pass re-checks every page, repairs
        // nothing, and leaves the quarantine set untouched.
        let stuck = svc.scrub_once(&ScrubOptions::default());
        assert_eq!(stuck.pages_checked, bad.len());
        assert_eq!(stuck.pages_repaired, 0);
        assert_eq!(stuck.pages_still_bad, bad.len());
        assert_eq!(store.quarantined_pages(), bad);

        // Repair the medium; the next pass un-quarantines everything.
        store.heal_poison();
        let healed = svc.scrub_once(&ScrubOptions::default());
        assert_eq!(healed.pages_repaired, bad.len());
        assert_eq!(healed.pages_still_bad, 0);
        assert!(store.quarantined_pages().is_empty());

        // Results transition partial → complete, bit-identical to a store
        // that was never poisoned, and the report carries the scrub history.
        let complete = svc.sum_where(f64::NEG_INFINITY, f64::INFINITY, &all).unwrap();
        assert!(complete.loss.is_complete());
        let clean = Service::new(
            Arc::new(Store::new(
                Column::from_f64(&data, Format::alp()),
                CacheConfig::default_config(),
            )),
            ServiceConfig::default(),
        );
        let reference = clean.sum_where(f64::NEG_INFINITY, f64::INFINITY, &all).unwrap();
        assert_eq!(complete.value.sum.to_bits(), reference.value.sum.to_bits());
        assert_eq!(complete.value.matches, reference.value.matches);
        assert_eq!(complete.loss.scrub_checked, 2 * bad.len() as u64);
        assert_eq!(complete.loss.scrub_repaired, bad.len() as u64);
    }

    #[test]
    fn production_stores_inject_nothing() {
        assert!(!PoisonPlan::none().poisons(0));
        assert!(PoisonPlan::from_env().seed == fault_seed(0));
        // A seeded plan is a pure function of (seed, page).
        let a: Vec<bool> = (0..64).map(|p| PoisonPlan::seeded(7).poisons(p)).collect();
        let b: Vec<bool> = (0..64).map(|p| PoisonPlan::seeded(7).poisons(p)).collect();
        assert_eq!(a, b);
    }
}
