//! Multi-column tables and general aggregation — enough relational surface to
//! express the paper's end-to-end queries plus the selective scans that
//! motivate vector-granular compression.

use fastlanes::VECTOR_SIZE;

use crate::{Column, Format};

/// Supported aggregate functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Aggregate {
    /// Sum of values (NaNs propagate, as in IEEE).
    Sum,
    /// Minimum value (NaNs skipped).
    Min,
    /// Maximum value (NaNs skipped).
    Max,
    /// Number of values.
    Count,
    /// Arithmetic mean.
    Avg,
}

/// Min/max accumulator with explicit emptiness: input with no valid (non-NaN)
/// values stays `None` — never a ±inf sentinel. Both `aggregate` paths fold
/// through this one helper, so MIN and MAX cannot drift apart again. Ties
/// keep the earlier value, matching `alp_core::scan_values`' fold.
#[derive(Debug, Clone, Copy, Default)]
struct MinMax {
    min: Option<f64>,
    max: Option<f64>,
}

impl MinMax {
    /// Folds one value; NaNs are invalid and never compared.
    #[inline]
    fn update(&mut self, x: f64) {
        if x.is_nan() {
            return;
        }
        self.min = Some(match self.min {
            Some(m) if m <= x => m,
            _ => x,
        });
        self.max = Some(match self.max {
            Some(m) if m >= x => m,
            _ => x,
        });
    }

    /// Folds every valid value of `values` through a per-chunk validity word
    /// — the same 64-bit bitmap layout the fused scan produces — so NaN-dense
    /// chunks cost one popcount-style walk instead of a branch per value.
    fn update_valid(&mut self, values: &[f64]) {
        for chunk in values.chunks(64) {
            let mut word = 0u64;
            for (i, &x) in chunk.iter().enumerate() {
                word |= ((!x.is_nan()) as u64) << i;
            }
            while word != 0 {
                let i = word.trailing_zeros() as usize;
                word &= word - 1;
                self.update(chunk[i]);
            }
        }
    }
}

impl Column {
    /// Computes an aggregate over the whole column, vector-at-a-time.
    ///
    /// `None` means the aggregate is undefined: MIN/MAX over a column with no
    /// valid (non-NaN) values, or AVG of an empty column. Sentinel infinities
    /// never leak out of an all-invalid page.
    pub fn try_aggregate(&self, agg: Aggregate) -> Option<f64> {
        let mut sum = 0.0f64;
        let mut minmax = MinMax::default();
        let mut count = 0usize;
        let mut buf = vec![0.0f64; VECTOR_SIZE];
        for v_idx in 0..self.zone_maps().len() {
            let n = self.decompress_vector_at(v_idx, &mut buf);
            count += n;
            let live = buf.get(..n).unwrap_or(&buf);
            match agg {
                Aggregate::Sum | Aggregate::Avg => sum += live.iter().sum::<f64>(),
                Aggregate::Min | Aggregate::Max => minmax.update_valid(live),
                Aggregate::Count => {}
            }
        }
        match agg {
            Aggregate::Sum => Some(sum),
            Aggregate::Min => minmax.min,
            Aggregate::Max => minmax.max,
            Aggregate::Count => Some(count as f64),
            Aggregate::Avg => {
                if count == 0 {
                    None
                } else {
                    Some(sum / count as f64)
                }
            }
        }
    }

    /// Convenience twin of [`Column::try_aggregate`]: undefined aggregates
    /// (see there) come back as NaN.
    pub fn aggregate(&self, agg: Aggregate) -> f64 {
        self.try_aggregate(agg).unwrap_or(f64::NAN)
    }
}

/// A named collection of equal-length columns.
pub struct Table {
    columns: Vec<(String, Column)>,
    rows: usize,
}

/// Errors from table construction and queries.
#[derive(Debug, PartialEq, Eq)]
pub enum TableError {
    /// Column lengths differ.
    LengthMismatch {
        /// Name of the offending column.
        column: String,
        /// Its length.
        len: usize,
        /// Expected length.
        expected: usize,
    },
    /// No column with the requested name.
    NoSuchColumn(String),
}

impl core::fmt::Display for TableError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            TableError::LengthMismatch { column, len, expected } => {
                write!(f, "column {column:?} has {len} rows, expected {expected}")
            }
            TableError::NoSuchColumn(name) => write!(f, "no column named {name:?}"),
        }
    }
}

impl std::error::Error for TableError {}

impl Table {
    /// Builds a table, compressing each `(name, data)` pair with `format`.
    pub fn from_columns(columns: Vec<(&str, Vec<f64>, Format)>) -> Result<Self, TableError> {
        let rows = columns.first().map(|(_, d, _)| d.len()).unwrap_or(0);
        let mut built = Vec::with_capacity(columns.len());
        for (name, data, format) in columns {
            if data.len() != rows {
                return Err(TableError::LengthMismatch {
                    column: name.to_string(),
                    len: data.len(),
                    expected: rows,
                });
            }
            built.push((name.to_string(), Column::from_f64(&data, format)));
        }
        Ok(Self { columns: built, rows })
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Looks up a column by name.
    pub fn column(&self, name: &str) -> Result<&Column, TableError> {
        self.columns
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, c)| c)
            .ok_or_else(|| TableError::NoSuchColumn(name.to_string()))
    }

    /// `SELECT agg(target) WHERE lo <= filter <= hi` — filter on one column,
    /// aggregate another, touching only the target vectors that contain
    /// matches (vector-granular push-down across columns).
    pub fn aggregate_where(
        &self,
        target: &str,
        agg: Aggregate,
        filter: &str,
        lo: f64,
        hi: f64,
    ) -> Result<FilteredAggregate, TableError> {
        let filter_col = self.column(filter)?;
        let target_col = self.column(target)?;

        let mut sum = 0.0f64;
        let mut minmax = MinMax::default();
        let mut count = 0usize;
        let mut vectors_touched = 0usize;

        let mut fbuf = vec![0.0f64; VECTOR_SIZE];
        let mut tbuf = vec![0.0f64; VECTOR_SIZE];
        for (v_idx, zm) in filter_col.zone_maps().iter().enumerate() {
            if !zm.overlaps(lo, hi) {
                continue;
            }
            let n = filter_col.decompress_vector_at(v_idx, &mut fbuf);
            // Selection bitmap of the filter vector: one word per 64 rows,
            // built once, driving both the any-match test and the target
            // walk — NaNs fail both comparisons, so hit bits are valid bits.
            let mut hits = [0u64; VECTOR_SIZE / 64];
            let mut any = false;
            for (w, chunk) in fbuf[..n].chunks(64).enumerate() {
                let mut word = 0u64;
                for (i, &x) in chunk.iter().enumerate() {
                    word |= ((x >= lo && x <= hi) as u64) << i;
                }
                hits[w] = word;
                any |= word != 0;
            }
            if !any {
                // Decompress the target vector only when matches exist.
                continue;
            }
            vectors_touched += 1;
            let tn = target_col.decompress_vector_at(v_idx, &mut tbuf);
            debug_assert_eq!(n, tn);
            for (w, &word) in hits.iter().enumerate() {
                let mut word = word;
                while word != 0 {
                    let i = w * 64 + word.trailing_zeros() as usize;
                    word &= word - 1;
                    let t = tbuf[i];
                    count += 1;
                    sum += t;
                    minmax.update(t);
                }
            }
        }

        let value = match agg {
            Aggregate::Sum => sum,
            // All-invalid selections are undefined, surfaced as NaN here (the
            // scalar slot has no `None`) — never a ±inf sentinel.
            Aggregate::Min => minmax.min.unwrap_or(f64::NAN),
            Aggregate::Max => minmax.max.unwrap_or(f64::NAN),
            Aggregate::Count => count as f64,
            Aggregate::Avg => {
                if count == 0 {
                    f64::NAN
                } else {
                    sum / count as f64
                }
            }
        };
        Ok(FilteredAggregate { value, matches: count, vectors_touched })
    }
}

/// Result of [`Table::aggregate_where`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FilteredAggregate {
    /// The aggregate value.
    pub value: f64,
    /// Matching rows.
    pub matches: usize,
    /// Target-column vectors that were actually decompressed.
    pub vectors_touched: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_table() -> Table {
        let n = 300_000;
        let time: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let price: Vec<f64> = (0..n).map(|i| ((i * 7) % 1000) as f64 / 100.0).collect();
        Table::from_columns(vec![("time", time, Format::alp()), ("price", price, Format::alp())])
            .unwrap()
    }

    #[test]
    fn aggregates_match_reference() {
        let data: Vec<f64> = (0..50_000).map(|i| ((i % 997) as f64) / 10.0).collect();
        let col = Column::from_f64(&data, Format::alp());
        assert_eq!(col.aggregate(Aggregate::Count), data.len() as f64);
        let sum: f64 = data.iter().sum();
        assert!((col.aggregate(Aggregate::Sum) - sum).abs() < sum.abs() * 1e-12);
        assert_eq!(col.aggregate(Aggregate::Min), 0.0);
        assert_eq!(col.aggregate(Aggregate::Max), 99.6);
        let avg = sum / data.len() as f64;
        assert!((col.aggregate(Aggregate::Avg) - avg).abs() < 1e-9);
    }

    #[test]
    fn min_max_of_all_invalid_pages_is_none_not_infinities() {
        // Every value NaN: MIN/MAX are undefined, not ±inf sentinels.
        let col = Column::from_f64(&vec![f64::NAN; 2 * VECTOR_SIZE], Format::alp());
        assert_eq!(col.try_aggregate(Aggregate::Min), None);
        assert_eq!(col.try_aggregate(Aggregate::Max), None);
        assert!(col.aggregate(Aggregate::Min).is_nan());
        assert!(col.aggregate(Aggregate::Max).is_nan());
        // Count stays defined; Avg of NaNs is a defined (NaN) mean.
        assert_eq!(col.try_aggregate(Aggregate::Count), Some((2 * VECTOR_SIZE) as f64));

        // Empty column: MIN/MAX and AVG are undefined.
        let empty = Column::from_f64(&[], Format::alp());
        assert_eq!(empty.try_aggregate(Aggregate::Min), None);
        assert_eq!(empty.try_aggregate(Aggregate::Max), None);
        assert_eq!(empty.try_aggregate(Aggregate::Avg), None);
        assert_eq!(empty.try_aggregate(Aggregate::Sum), Some(0.0));
    }

    #[test]
    fn min_max_skip_nans_but_keep_live_values() {
        let mut data: Vec<f64> = (0..3000).map(|i| (i % 100) as f64).collect();
        data[0] = f64::NAN;
        data[1500] = f64::NAN;
        let col = Column::from_f64(&data, Format::alp());
        assert_eq!(col.try_aggregate(Aggregate::Min), Some(0.0));
        assert_eq!(col.try_aggregate(Aggregate::Max), Some(99.0));
    }

    #[test]
    fn aggregate_where_over_all_nan_targets_is_nan_not_infinite() {
        let n = 2 * VECTOR_SIZE;
        let time: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let price = vec![f64::NAN; n];
        let t = Table::from_columns(vec![
            ("time", time, Format::alp()),
            ("price", price, Format::alp()),
        ])
        .unwrap();
        let r = t.aggregate_where("price", Aggregate::Min, "time", 0.0, 100.0).unwrap();
        assert_eq!(r.matches, 101);
        assert!(r.value.is_nan(), "all-NaN selection must not yield +inf, got {}", r.value);
        let r = t.aggregate_where("price", Aggregate::Max, "time", 0.0, 100.0).unwrap();
        assert!(r.value.is_nan(), "all-NaN selection must not yield -inf, got {}", r.value);
    }

    #[test]
    fn table_rejects_mismatched_lengths() {
        let result = Table::from_columns(vec![
            ("a", vec![1.0; 10], Format::alp()),
            ("b", vec![1.0; 11], Format::alp()),
        ]);
        assert!(matches!(result, Err(TableError::LengthMismatch { .. })));
    }

    #[test]
    fn aggregate_where_filters_on_sorted_column() {
        let t = test_table();
        // Rows 100_000..=100_999 selected via the sorted time column.
        let r = t.aggregate_where("price", Aggregate::Count, "time", 100_000.0, 100_999.0).unwrap();
        assert_eq!(r.matches, 1000);
        // Sorted filter + vector granularity: only 1-2 vectors touched.
        assert!(r.vectors_touched <= 2, "{}", r.vectors_touched);

        let reference: f64 = (100_000..=100_999).map(|i| ((i * 7) % 1000) as f64 / 100.0).sum();
        let s = t.aggregate_where("price", Aggregate::Sum, "time", 100_000.0, 100_999.0).unwrap();
        assert!((s.value - reference).abs() < 1e-9, "{} vs {reference}", s.value);
    }

    #[test]
    fn aggregate_where_unknown_column() {
        let t = test_table();
        assert!(matches!(
            t.aggregate_where("nope", Aggregate::Sum, "time", 0.0, 1.0),
            Err(TableError::NoSuchColumn(_))
        ));
    }

    #[test]
    fn filter_indices_match_predicate() {
        let data: Vec<f64> = (0..10_000).map(|i| i as f64).collect();
        let col = Column::from_f64(&data, Format::alp());
        let ids = col.filter_indices(5000.0, 5004.0);
        assert_eq!(ids, vec![5000, 5001, 5002, 5003, 5004]);
    }

    #[test]
    fn decompress_vector_at_every_format() {
        let data: Vec<f64> = (0..250_000).map(|i| (i % 333) as f64 / 4.0).collect();
        for fmt in [
            Format::Uncompressed,
            Format::alp(),
            Format::by_id("patas").unwrap(),
            Format::by_id("gpzip").unwrap(),
        ] {
            let col = Column::from_f64(&data, fmt);
            let mut buf = vec![0.0f64; VECTOR_SIZE];
            for v_idx in [0usize, 101, 207, 244] {
                let n = col.decompress_vector_at(v_idx, &mut buf);
                let start = v_idx * VECTOR_SIZE;
                let end = (start + VECTOR_SIZE).min(data.len());
                assert_eq!(n, end - start, "{} v{}", fmt.name(), v_idx);
                assert_eq!(&buf[..n], &data[start..end], "{} v{}", fmt.name(), v_idx);
            }
        }
    }
}
