//! A minimal vectorized query engine in the style of Tectorwise (Kersten et
//! al., VLDB'18), built for the paper's §4.3 end-to-end experiments.
//!
//! The engine stores one `f64` column in row-groups of 100 × 1024 values,
//! compressed with a selectable [`Format`]. Operators pull data
//! **vector-at-a-time** (1024 values) through a reusable buffer:
//!
//! * [`Column::scan`] — decompress every vector (the SCAN query);
//! * [`Column::sum`] — SCAN plus a vectorized SUM aggregation;
//! * [`Column::par_scan`] / [`Column::par_sum`] — the same with morsel-driven
//!   parallelism (each morsel = one row-group, claimed from an atomic
//!   counter). The scheduler is the workspace-shared [`alp_core::par`]
//!   (this engine's original private copy was extracted there), which also
//!   powers [`Column::from_f64_parallel`] on the write side.
//!
//! Block-granularity matters: ALP and the per-value codecs decompress a
//! single vector at a time; GPZip (the Zstd stand-in) must inflate an entire
//! row-group block to read anything inside it — the skipping disadvantage the
//! paper highlights.

#![forbid(unsafe_code)]

pub mod cache;
pub mod scrub;
pub mod service;
pub mod table;

use alp_core::{ColumnCodec, Registry, Scratch};
use fastlanes::VECTOR_SIZE;

/// Row-group size in vectors (matches the ALP compressor's default).
pub const ROWGROUP_VECTORS: usize = 100;
/// Row-group size in values.
pub const ROWGROUP_VALUES: usize = ROWGROUP_VECTORS * VECTOR_SIZE;

/// Storage format of a column: either raw, or any codec from the workspace
/// [`Registry`]. The engine decides the physical layout from the codec's
/// capabilities, so there are no per-scheme construction branches.
#[derive(Clone, Copy)]
pub enum Format {
    /// Plain `f64` array (the paper's "Uncompressed" baseline).
    Uncompressed,
    /// A registered [`ColumnCodec`].
    Registered(&'static dyn ColumnCodec),
}

impl Format {
    /// Looks a format up by registry id (`"alp"`, `"patas"`, `"gpzip"`, …).
    /// `None` for unknown ids and for ratio-only schemes, which cannot back
    /// a stored column.
    pub fn by_id(id: &str) -> Option<Format> {
        let codec = Registry::get(id)?;
        if codec.caps().ratio_only {
            return None;
        }
        Some(Format::Registered(codec))
    }

    /// ALP (this paper) — the engine's default compressed format.
    pub fn alp() -> Format {
        Format::Registered(&alp_core::impls::Alp)
    }

    /// Display name for benchmark tables.
    pub fn name(&self) -> String {
        match self {
            Format::Uncompressed => "Uncompressed".into(),
            Format::Registered(c) => c.name().into(),
        }
    }
}

impl PartialEq for Format {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Format::Uncompressed, Format::Uncompressed) => true,
            (Format::Registered(a), Format::Registered(b)) => a.id() == b.id(),
            _ => false,
        }
    }
}

impl core::fmt::Debug for Format {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Format::Uncompressed => write!(f, "Uncompressed"),
            Format::Registered(c) => write!(f, "Registered({})", c.id()),
        }
    }
}

enum Storage {
    Uncompressed(Vec<f64>),
    /// ALP keeps its native compressed form: it is the one codec with
    /// random vector access, which the engine exploits for per-vector reads.
    Alp(alp::Compressed<f64>),
    /// Vector-granular codec: `(compressed bytes, value count)` per
    /// 1024-value vector.
    Vectors(&'static dyn ColumnCodec, Vec<(Vec<u8>, usize)>),
    /// Block-granular codec: `(compressed bytes, value count)` per row-group
    /// block (the general-purpose compressors).
    Blocks(&'static dyn ColumnCodec, Vec<(Vec<u8>, usize)>),
}

/// Per-vector min/max statistics enabling predicate push-down: a vector whose
/// range is disjoint from the predicate is skipped without decompression.
///
/// NaNs are handled explicitly rather than folded into the range: `min`/`max`
/// cover only the non-NaN values (so a stray NaN can never poison the range
/// into `NaN` and make [`ZoneMap::overlaps`] silently reject live neighbours),
/// and [`ZoneMap::has_nan`] records that NaNs were present at all, so
/// consumers that *do* care about NaNs (e.g. `IS NULL`-style scans) can find
/// them without a full decompression pass.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ZoneMap {
    /// Minimum non-NaN value in the vector (`+inf` if none).
    pub min: f64,
    /// Maximum non-NaN value in the vector (`-inf` if none).
    pub max: f64,
    /// Whether the vector contains at least one NaN.
    pub has_nan: bool,
}

impl ZoneMap {
    /// Builds the zone map of one vector of values.
    pub fn of(values: &[f64]) -> Self {
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        let mut has_nan = false;
        for &v in values {
            // NaNs never match a range predicate; exclude them from the
            // range but remember they exist.
            if v.is_nan() {
                has_nan = true;
            } else {
                min = min.min(v);
                max = max.max(v);
            }
        }
        Self { min, max, has_nan }
    }

    /// Whether any value in the zone could fall inside `[lo, hi]`.
    ///
    /// NaN-only vectors have an empty range (`min = +inf`, `max = -inf`)
    /// and overlap nothing — the `min <= max` guard matters for predicates
    /// with infinite bounds, where the sentinel infinities would otherwise
    /// compare as overlapping and force a pointless scan.
    #[inline]
    pub fn overlaps(&self, lo: f64, hi: f64) -> bool {
        self.min <= self.max && self.min <= hi && self.max >= lo
    }
}

/// Result of a predicated aggregation, including push-down effectiveness.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FilteredSum {
    /// Sum of values inside the predicate range.
    pub sum: f64,
    /// Number of matching values.
    pub matches: usize,
    /// Vectors whose payload was actually decompressed.
    pub vectors_scanned: usize,
    /// Vectors skipped purely from their zone map.
    pub vectors_skipped: usize,
    /// Non-NaN values among everything actually scanned (validity-bitmap
    /// popcounts; zone-skipped vectors contribute nothing).
    pub valid: usize,
    /// NaN values among everything actually scanned.
    pub invalid: usize,
}

impl FilteredSum {
    /// Additive identity: nothing scanned yet.
    pub const fn zero() -> Self {
        Self { sum: 0.0, matches: 0, vectors_scanned: 0, vectors_skipped: 0, valid: 0, invalid: 0 }
    }
}

/// Why [`Column::try_decompress_vector_at`] could not deliver a vector.
#[derive(Debug, Clone, PartialEq)]
pub enum VectorAccessError {
    /// The requested vector index is beyond the column.
    OutOfRange {
        /// Requested global vector index.
        vector: usize,
        /// Number of vectors in the column.
        vectors: usize,
    },
    /// ALP storage rejected the `(rowgroup, vector)` coordinate.
    Index(alp::VectorIndexError),
    /// The stored bytes failed to decode (corruption).
    Codec(alp_core::CoreError),
    /// The codec decoded fewer values than the vector's position implies —
    /// the block is internally inconsistent.
    Truncated {
        /// Requested global vector index.
        vector: usize,
        /// Values actually present in the decoded block.
        decoded: usize,
    },
}

impl core::fmt::Display for VectorAccessError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::OutOfRange { vector, vectors } => {
                write!(f, "vector index {vector} out of range (column has {vectors} vectors)")
            }
            Self::Index(e) => write!(f, "{e}"),
            Self::Codec(e) => write!(f, "{e}"),
            Self::Truncated { vector, decoded } => {
                write!(f, "vector {vector} lies beyond the {decoded} decoded values of its block")
            }
        }
    }
}

impl std::error::Error for VectorAccessError {}

/// A single compressed column plus scan/aggregate operators.
pub struct Column {
    storage: Storage,
    len: usize,
    /// One entry per 1024-value vector.
    zone_maps: Vec<ZoneMap>,
}

impl Column {
    /// Compresses `data` into the requested format (the COMP query measures
    /// this constructor).
    pub fn from_f64(data: &[f64], format: Format) -> Self {
        Self::from_f64_parallel(data, format, 1)
    }

    /// Like [`Column::from_f64`], but compresses on up to `threads`
    /// morsel-claiming workers through the shared [`alp_core::par`]
    /// scheduler. The stored bytes are identical to the serial constructor's
    /// at every thread count: chunk boundaries, not thread count, define the
    /// encoding units.
    pub fn from_f64_parallel(data: &[f64], format: Format, threads: usize) -> Self {
        let storage = match format {
            Format::Uncompressed => Storage::Uncompressed(data.to_vec()),
            // ALP is the one codec with random vector access; keep its native
            // compressed form so per-vector reads stay cheap.
            Format::Registered(codec) if codec.caps().random_vector_access => {
                Storage::Alp(alp::Compressor::new().compress_parallel(data, threads))
            }
            Format::Registered(codec) => {
                assert!(!codec.caps().ratio_only, "{} cannot back a stored column", codec.id());
                let granularity =
                    if codec.caps().block_based { ROWGROUP_VALUES } else { VECTOR_SIZE };
                let blocks = codec
                    .par_compress(data, granularity, threads)
                    .expect("in-memory compression of trusted data");
                if codec.caps().block_based {
                    Storage::Blocks(codec, blocks)
                } else {
                    Storage::Vectors(codec, blocks)
                }
            }
        };
        let zone_maps = data.chunks(VECTOR_SIZE).map(ZoneMap::of).collect();
        Self { storage, len: data.len(), zone_maps }
    }

    /// The per-vector zone maps.
    pub fn zone_maps(&self) -> &[ZoneMap] {
        &self.zone_maps
    }

    /// `SELECT sum(x) WHERE lo <= x <= hi` with zone-map push-down.
    ///
    /// Vector-granular formats (ALP, the per-value codecs, uncompressed) skip
    /// non-overlapping vectors without touching their payload. GPZip can only
    /// skip a whole row-group block when *every* vector inside it is
    /// disjoint — the skipping disadvantage of block-based compression the
    /// paper describes.
    pub fn sum_where(&self, lo: f64, hi: f64) -> FilteredSum {
        let mut result = FilteredSum::zero();
        match &self.storage {
            Storage::Blocks(_, blocks) => {
                let mut vector_idx = 0usize;
                for (m, (_, count)) in blocks.iter().enumerate() {
                    let n_vectors = count.div_ceil(VECTOR_SIZE);
                    let zones = &self.zone_maps[vector_idx..vector_idx + n_vectors];
                    if zones.iter().any(|z| z.overlaps(lo, hi)) {
                        // Must inflate the whole block even for one vector.
                        let mut local = vector_idx;
                        self.for_each_vector_in_morsel(m, &mut |v| {
                            result.vectors_scanned += 1;
                            if self.zone_maps[local].overlaps(lo, hi) {
                                accumulate(v, lo, hi, &mut result);
                            }
                            local += 1;
                        });
                    } else {
                        result.vectors_skipped += n_vectors;
                    }
                    vector_idx += n_vectors;
                }
            }
            _ => {
                let mut vector_idx = 0usize;
                for m in 0..self.morsel_count() {
                    // Fast path: skip the whole morsel when fully disjoint.
                    self.for_each_vector_in_morsel_filtered(
                        m,
                        &mut vector_idx,
                        lo,
                        hi,
                        &mut result,
                    );
                }
            }
        }
        result
    }

    /// Vector-granular filtered scan of one morsel, consulting the zone map
    /// *before* decompressing each vector.
    fn for_each_vector_in_morsel_filtered(
        &self,
        m: usize,
        vector_idx: &mut usize,
        lo: f64,
        hi: f64,
        result: &mut FilteredSum,
    ) {
        match &self.storage {
            Storage::Uncompressed(values) => {
                let start = m * ROWGROUP_VALUES;
                let end = (start + ROWGROUP_VALUES).min(values.len());
                for chunk in values[start..end].chunks(VECTOR_SIZE) {
                    if self.zone_maps[*vector_idx].overlaps(lo, hi) {
                        result.vectors_scanned += 1;
                        accumulate(chunk, lo, hi, result);
                    } else {
                        result.vectors_skipped += 1;
                    }
                    *vector_idx += 1;
                }
            }
            Storage::Alp(c) => {
                // Fused compressed-domain scan: unpack, FOR-add, exception
                // patch, predicate and aggregate in one pass per vector with
                // no intermediate `Vec<f64>`. The kernel's accumulation chain
                // matches `accumulate` bit-for-bit (see `alp::scan_vector`),
                // so this path and the materializing one agree exactly.
                let mut buf = vec![0.0f64; VECTOR_SIZE];
                for v in 0..c.rowgroups[m].vector_count() {
                    if self.zone_maps[*vector_idx].overlaps(lo, hi) {
                        result.vectors_scanned += 1;
                        let scan = c
                            .try_scan_vector(m, v, lo, hi, false, &mut buf)
                            .expect("scanning coordinates this column produced");
                        result.sum += scan.sum;
                        result.matches += scan.matches;
                        result.valid += scan.valid_count();
                        result.invalid += scan.invalid_count();
                    } else {
                        result.vectors_skipped += 1;
                    }
                    *vector_idx += 1;
                }
            }
            Storage::Vectors(codec, blocks) => {
                let mut scratch = Scratch::new();
                let mut decoded = Vec::new();
                let start = m * ROWGROUP_VECTORS;
                let end = (start + ROWGROUP_VECTORS).min(blocks.len());
                for (bytes, count) in &blocks[start..end] {
                    if self.zone_maps[*vector_idx].overlaps(lo, hi) {
                        result.vectors_scanned += 1;
                        codec
                            .try_decompress_into(bytes, *count, &mut decoded, &mut scratch)
                            .expect("decoding bytes this column compressed");
                        accumulate(&decoded, lo, hi, result);
                    } else {
                        result.vectors_skipped += 1;
                    }
                    *vector_idx += 1;
                }
            }
            Storage::Blocks(..) => unreachable!("handled by sum_where"),
        }
    }

    /// Number of values in the column.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the column is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Compressed footprint in bytes (payload only, as stored).
    pub fn compressed_bytes(&self) -> usize {
        match &self.storage {
            Storage::Uncompressed(v) => v.len() * 8,
            Storage::Alp(c) => c.compressed_bits() / 8,
            Storage::Vectors(_, blocks) => blocks.iter().map(|(b, _)| b.len()).sum(),
            Storage::Blocks(_, blocks) => blocks.iter().map(|(b, _)| b.len()).sum(),
        }
    }

    /// Number of morsels (parallel work units).
    fn morsel_count(&self) -> usize {
        match &self.storage {
            Storage::Uncompressed(v) => v.len().div_ceil(ROWGROUP_VALUES),
            Storage::Alp(c) => c.rowgroups.len(),
            Storage::Vectors(_, blocks) => blocks.len().div_ceil(ROWGROUP_VECTORS),
            Storage::Blocks(_, blocks) => blocks.len(),
        }
    }

    /// Runs `consume` on every decompressed vector of morsel `m`.
    // ANALYZER-ALLOW(no-panic): the bytes were produced in-memory by this
    // column's own compressor, so a decode failure here is a codec bug, not
    // untrusted input — the service layer's `try_` paths handle the fallible
    // case and route failures through quarantine instead.
    fn for_each_vector_in_morsel(&self, m: usize, consume: &mut dyn FnMut(&[f64])) {
        match &self.storage {
            Storage::Uncompressed(values) => {
                let start = m * ROWGROUP_VALUES;
                let end = (start + ROWGROUP_VALUES).min(values.len());
                for chunk in values[start..end].chunks(VECTOR_SIZE) {
                    consume(chunk);
                }
            }
            Storage::Alp(c) => {
                let mut buf = vec![0.0f64; VECTOR_SIZE];
                let n_vectors = c.rowgroups[m].vector_count();
                for v in 0..n_vectors {
                    let n = c.decompress_vector(m, v, &mut buf);
                    consume(&buf[..n]);
                }
            }
            Storage::Vectors(codec, blocks) => {
                let mut scratch = Scratch::new();
                let mut decoded = Vec::new();
                let start = m * ROWGROUP_VECTORS;
                let end = (start + ROWGROUP_VECTORS).min(blocks.len());
                for (bytes, count) in &blocks[start..end] {
                    codec
                        .try_decompress_into(bytes, *count, &mut decoded, &mut scratch)
                        .expect("decoding bytes this column compressed");
                    consume(&decoded);
                }
            }
            Storage::Blocks(codec, blocks) => {
                // Block-based: the whole row-group inflates before any vector
                // can be delivered.
                let mut scratch = Scratch::new();
                let mut decoded = Vec::new();
                let (bytes, count) = &blocks[m];
                codec
                    .try_decompress_into(bytes, *count, &mut decoded, &mut scratch)
                    .expect("decoding bytes this column compressed");
                for chunk in decoded.chunks(VECTOR_SIZE) {
                    consume(chunk);
                }
            }
        }
    }

    /// SCAN: decompresses every vector, returns the number of tuples
    /// delivered. Every delivered value is read (folded into a checksum that
    /// is black-boxed), so the uncompressed path is honestly memory-bound —
    /// without the fold a slice of raw data could be "scanned" without
    /// touching a byte.
    pub fn scan(&self) -> usize {
        let mut tuples = 0usize;
        let mut checksum = 0u64;
        for m in 0..self.morsel_count() {
            self.for_each_vector_in_morsel(m, &mut |v| {
                checksum ^= fold_bits(v);
                tuples += v.len();
            });
        }
        std::hint::black_box(checksum);
        tuples
    }

    /// SUM: scan plus vectorized aggregation.
    pub fn sum(&self) -> f64 {
        let mut total = 0.0f64;
        for m in 0..self.morsel_count() {
            self.for_each_vector_in_morsel(m, &mut |v| {
                total += v.iter().sum::<f64>();
            });
        }
        total
    }

    /// Parallel SCAN over `threads` workers (morsel-driven). Returns total
    /// tuples scanned.
    pub fn par_scan(&self, threads: usize) -> usize {
        self.parallel(threads, |col, m| {
            let mut tuples = 0usize;
            let mut checksum = 0u64;
            col.for_each_vector_in_morsel(m, &mut |v| {
                checksum ^= fold_bits(v);
                tuples += v.len();
            });
            std::hint::black_box(checksum);
            tuples as f64
        }) as usize
    }

    /// Parallel SUM over `threads` workers.
    pub fn par_sum(&self, threads: usize) -> f64 {
        self.parallel(threads, |col, m| {
            let mut total = 0.0;
            col.for_each_vector_in_morsel(m, &mut |v| {
                total += v.iter().sum::<f64>();
            });
            total
        })
    }

    /// Decompresses the vector with global index `vector_idx` into `out`
    /// (≥ 1024 elements); returns the live count. For block-based storage
    /// (GPZip) this inflates the whole containing block — the penalty the
    /// paper attributes to general-purpose compression.
    // ANALYZER-ALLOW(no-panic): the bytes were produced in-memory by this
    // column's own compressor, so a decode failure here is a codec bug, not
    // untrusted input — fallible callers (`try_aggregate`) never feed this
    // path external bytes.
    pub fn decompress_vector_at(&self, vector_idx: usize, out: &mut [f64]) -> usize {
        assert!(out.len() >= VECTOR_SIZE);
        match &self.storage {
            Storage::Uncompressed(values) => {
                let start = vector_idx * VECTOR_SIZE;
                let end = (start + VECTOR_SIZE).min(values.len());
                out[..end - start].copy_from_slice(&values[start..end]);
                end - start
            }
            Storage::Alp(c) => c.decompress_vector(
                vector_idx / ROWGROUP_VECTORS,
                vector_idx % ROWGROUP_VECTORS,
                out,
            ),
            Storage::Vectors(codec, blocks) => {
                let (bytes, count) = &blocks[vector_idx];
                let mut decoded = Vec::new();
                codec
                    .try_decompress_into(bytes, *count, &mut decoded, &mut Scratch::new())
                    .expect("decoding bytes this column compressed");
                out[..decoded.len()].copy_from_slice(&decoded);
                decoded.len()
            }
            Storage::Blocks(codec, blocks) => {
                let block_idx = vector_idx / ROWGROUP_VECTORS;
                let within = vector_idx % ROWGROUP_VECTORS;
                let (bytes, count) = &blocks[block_idx];
                let mut decoded = Vec::new();
                codec
                    .try_decompress_into(bytes, *count, &mut decoded, &mut Scratch::new())
                    .expect("decoding bytes this column compressed");
                let start = within * VECTOR_SIZE;
                let end = (start + VECTOR_SIZE).min(decoded.len());
                out[..end - start].copy_from_slice(&decoded[start..end]);
                end - start
            }
        }
    }

    /// Fallible twin of [`Column::decompress_vector_at`]: decompresses the
    /// vector with global index `vector_idx` into `out` (cleared first),
    /// staging through `scratch`, and returns the live count. Never panics —
    /// out-of-range indices and corrupt payloads come back as typed
    /// [`VectorAccessError`]s. This is the decode path the query service uses
    /// for pages it treats as untrusted-by-policy.
    pub fn try_decompress_vector_at(
        &self,
        vector_idx: usize,
        out: &mut Vec<f64>,
        scratch: &mut Scratch,
    ) -> Result<usize, VectorAccessError> {
        out.clear();
        let vectors = self.zone_maps.len();
        if vector_idx >= vectors {
            return Err(VectorAccessError::OutOfRange { vector: vector_idx, vectors });
        }
        match &self.storage {
            Storage::Uncompressed(values) => {
                let start = vector_idx.saturating_mul(VECTOR_SIZE);
                let end = start.saturating_add(VECTOR_SIZE).min(values.len());
                let live = values
                    .get(start..end)
                    .ok_or(VectorAccessError::OutOfRange { vector: vector_idx, vectors })?;
                out.extend_from_slice(live);
                Ok(out.len())
            }
            Storage::Alp(c) => {
                // Stage through the scratch float buffer so repeated calls
                // stay allocation-free once warm.
                let mut buf = std::mem::take(&mut scratch.floats);
                buf.clear();
                buf.resize(VECTOR_SIZE, 0.0);
                let decoded = c
                    .try_decompress_vector(
                        vector_idx / ROWGROUP_VECTORS,
                        vector_idx % ROWGROUP_VECTORS,
                        &mut buf,
                    )
                    .map_err(VectorAccessError::Index);
                let result = decoded.and_then(|n| match buf.get(..n) {
                    Some(live) => {
                        out.extend_from_slice(live);
                        Ok(out.len())
                    }
                    None => Err(VectorAccessError::Truncated { vector: vector_idx, decoded: n }),
                });
                scratch.floats = buf;
                result
            }
            Storage::Vectors(codec, blocks) => {
                let (bytes, count) = blocks
                    .get(vector_idx)
                    .ok_or(VectorAccessError::OutOfRange { vector: vector_idx, vectors })?;
                codec
                    .try_decompress_into(bytes, *count, out, scratch)
                    .map_err(VectorAccessError::Codec)?;
                Ok(out.len())
            }
            Storage::Blocks(codec, blocks) => {
                let block_idx = vector_idx / ROWGROUP_VECTORS;
                let within = vector_idx % ROWGROUP_VECTORS;
                let (bytes, count) = blocks
                    .get(block_idx)
                    .ok_or(VectorAccessError::OutOfRange { vector: vector_idx, vectors })?;
                // The whole block inflates before one vector can be sliced
                // out — stage it in the scratch float buffer.
                let mut decoded = std::mem::take(&mut scratch.floats);
                let result = codec
                    .try_decompress_into(bytes, *count, &mut decoded, scratch)
                    .map_err(VectorAccessError::Codec)
                    .and_then(|()| {
                        let start = within.saturating_mul(VECTOR_SIZE);
                        let end = start.saturating_add(VECTOR_SIZE).min(decoded.len());
                        let live = decoded.get(start..end).ok_or(VectorAccessError::Truncated {
                            vector: vector_idx,
                            decoded: decoded.len(),
                        })?;
                        out.extend_from_slice(live);
                        Ok(out.len())
                    });
                scratch.floats = decoded;
                result
            }
        }
    }

    /// Fused per-vector scan — unpack→FOR→patch→predicate→aggregate in one
    /// pass, returning the vector's partial aggregates plus validity and hit
    /// bitmaps without materializing a `Vec<f64>`. `Ok(None)` means this
    /// storage has no fused kernel (vector- or block-granular codec bytes);
    /// the caller materializes instead. Partials fold bit-identically to
    /// [`Column::sum_where`]'s materializing chain.
    pub fn try_scan_vector_fused(
        &self,
        vector_idx: usize,
        lo: f64,
        hi: f64,
        scratch: &mut Scratch,
    ) -> Result<Option<alp::VectorScan<f64>>, VectorAccessError> {
        let vectors = self.zone_maps.len();
        if vector_idx >= vectors {
            return Err(VectorAccessError::OutOfRange { vector: vector_idx, vectors });
        }
        match &self.storage {
            Storage::Alp(c) => {
                // The corrupt-exception fallback inside `try_scan_vector`
                // stages through a float buffer; lend it the scratch one.
                // Only grow it — re-zeroing 8 KB per vector would cost the
                // fused path its no-materialization win, and the fallback
                // overwrites whatever it reads.
                let mut buf = std::mem::take(&mut scratch.floats);
                if buf.len() < VECTOR_SIZE {
                    buf.resize(VECTOR_SIZE, 0.0);
                }
                let scan = c
                    .try_scan_vector(
                        vector_idx / ROWGROUP_VECTORS,
                        vector_idx % ROWGROUP_VECTORS,
                        lo,
                        hi,
                        false,
                        &mut buf,
                    )
                    .map_err(VectorAccessError::Index);
                scratch.floats = buf;
                scan.map(Some)
            }
            Storage::Uncompressed(values) => {
                // Already materialized: scan the stored slice in place — the
                // fused path's "no intermediate copy" win applies here too.
                let start = vector_idx.saturating_mul(VECTOR_SIZE);
                let end = start.saturating_add(VECTOR_SIZE).min(values.len());
                let live = values
                    .get(start..end)
                    .ok_or(VectorAccessError::OutOfRange { vector: vector_idx, vectors })?;
                let mut scan = alp::VectorScan::empty(live.len());
                alp::scan_decoded(live, lo, hi, false, &mut scan);
                Ok(Some(scan))
            }
            Storage::Vectors(..) | Storage::Blocks(..) => Ok(None),
        }
    }

    /// Whether [`Column::try_scan_vector_fused`] has a real fused path for
    /// this column's storage.
    pub fn supports_fused_scan(&self) -> bool {
        matches!(self.storage, Storage::Alp(_) | Storage::Uncompressed(_))
    }

    /// `SELECT row_ids WHERE lo <= x <= hi` with zone-map push-down: returns
    /// global row indices of matching values.
    ///
    /// The selection vector is derived from per-vector hit-bitmap words:
    /// fused storages hand the bitmap back straight from the compressed
    /// domain, other storages materialize and build the same words — either
    /// way ids come from a `trailing_zeros` sparse-word walk, so vectors with
    /// few (or no) matches cost almost nothing beyond the scan itself.
    pub fn filter_indices(&self, lo: f64, hi: f64) -> Vec<u64> {
        let mut ids = Vec::new();
        let mut buf = vec![0.0f64; VECTOR_SIZE];
        let mut scratch = Scratch::new();
        for (v_idx, zm) in self.zone_maps.iter().enumerate() {
            if !zm.overlaps(lo, hi) {
                continue;
            }
            let base = (v_idx * VECTOR_SIZE) as u64;
            let words = match self
                .try_scan_vector_fused(v_idx, lo, hi, &mut scratch)
                .expect("scanning coordinates this column produced")
            {
                Some(scan) => scan.hits,
                None => {
                    let n = self.decompress_vector_at(v_idx, &mut buf);
                    let mut words = [0u64; alp::SCAN_WORDS];
                    for (j, chunk) in buf[..n].chunks(64).enumerate() {
                        let mut word = 0u64;
                        for (i, &x) in chunk.iter().enumerate() {
                            word |= ((x >= lo && x <= hi) as u64) << i;
                        }
                        words[j] = word;
                    }
                    words
                }
            };
            for (w_idx, &word) in words.iter().enumerate() {
                let mut w = word;
                while w != 0 {
                    let bit = w.trailing_zeros() as u64;
                    ids.push(base + (w_idx as u64) * 64 + bit);
                    w &= w - 1;
                }
            }
        }
        ids
    }

    /// Morsel scheduler: workers claim row-groups from the workspace-shared
    /// [`alp_core::par`] queue and accumulate a partial result; partials are
    /// added at the join barrier.
    fn parallel(&self, threads: usize, work: impl Fn(&Column, usize) -> f64 + Sync) -> f64 {
        alp_core::par::fold_morsels(
            threads.max(1),
            self.morsel_count(),
            || 0.0f64,
            |acc, m| *acc += work(self, m),
            |a, b| a + b,
        )
    }
}

/// XOR-fold of a vector's bit patterns — the cheapest possible consumer that
/// still forces every value to be read.
#[inline]
fn fold_bits(v: &[f64]) -> u64 {
    let mut acc = 0u64;
    for &x in v {
        acc ^= x.to_bits();
    }
    acc
}

/// Adds the in-range values of `v` into `result` (branch-predictable
/// predicated accumulation). Shared with [`service`] so a cached page scans
/// bit-identically to the column's own operators — and the exact chain the
/// fused scan kernels reproduce (`alp::scan_vector`): one sequential scalar
/// sum per vector, added into the running total afterwards.
#[inline]
pub(crate) fn accumulate(v: &[f64], lo: f64, hi: f64, result: &mut FilteredSum) {
    let mut sum = 0.0;
    let mut matches = 0usize;
    let mut invalid = 0usize;
    for &x in v {
        let hit = x >= lo && x <= hi;
        sum += if hit { x } else { 0.0 };
        matches += hit as usize;
        invalid += x.is_nan() as usize;
    }
    result.sum += sum;
    result.matches += matches;
    result.valid += v.len() - invalid;
    result.invalid += invalid;
}

#[cfg(test)]
mod tests {
    use super::*;

    fn formats() -> Vec<Format> {
        vec![
            Format::Uncompressed,
            Format::alp(),
            Format::by_id("gorilla").unwrap(),
            Format::by_id("patas").unwrap(),
            Format::by_id("gpzip").unwrap(),
        ]
    }

    fn sample_data(n: usize) -> Vec<f64> {
        (0..n).map(|i| ((i % 5000) as f64) / 100.0).collect()
    }

    #[test]
    fn scan_counts_all_tuples_in_every_format() {
        let data = sample_data(250_000);
        for fmt in formats() {
            let col = Column::from_f64(&data, fmt);
            assert_eq!(col.scan(), data.len(), "{}", fmt.name());
        }
    }

    #[test]
    fn sum_agrees_across_formats() {
        let data = sample_data(123_456);
        let expected: f64 = data.iter().sum();
        for fmt in formats() {
            let col = Column::from_f64(&data, fmt);
            let got = col.sum();
            assert!(
                (got - expected).abs() <= expected.abs() * 1e-12,
                "{}: {got} vs {expected}",
                fmt.name()
            );
        }
    }

    #[test]
    fn parallel_matches_serial() {
        let data = sample_data(300_000);
        for fmt in [Format::alp(), Format::Uncompressed] {
            let col = Column::from_f64(&data, fmt);
            assert_eq!(col.par_scan(4), col.scan());
            let serial = col.sum();
            let parallel = col.par_sum(4);
            assert!((serial - parallel).abs() <= serial.abs() * 1e-9);
        }
    }

    #[test]
    fn parallel_construction_is_identical_to_serial() {
        let data = sample_data(3 * ROWGROUP_VALUES + 700);
        for fmt in formats() {
            let serial = Column::from_f64(&data, fmt);
            for threads in [1, 2, 7] {
                let par = Column::from_f64_parallel(&data, fmt, threads);
                assert_eq!(
                    par.compressed_bytes(),
                    serial.compressed_bytes(),
                    "{} t={threads}",
                    fmt.name()
                );
                assert_eq!(par.scan(), serial.scan(), "{} t={threads}", fmt.name());
                let (a, b) = (par.sum(), serial.sum());
                assert!((a - b).abs() <= b.abs() * 1e-12, "{} t={threads}", fmt.name());
            }
        }
    }

    #[test]
    fn compressed_sizes_are_sane() {
        let data = sample_data(200_000);
        let raw = Column::from_f64(&data, Format::Uncompressed).compressed_bytes();
        let alp = Column::from_f64(&data, Format::alp()).compressed_bytes();
        let zstd_sub = Column::from_f64(&data, Format::by_id("gpzip").unwrap()).compressed_bytes();
        assert_eq!(raw, data.len() * 8);
        assert!(alp < raw / 2, "alp {alp} raw {raw}");
        assert!(zstd_sub < raw, "gpzip {zstd_sub} raw {raw}");
    }

    #[test]
    fn empty_column_works() {
        for fmt in formats() {
            let col = Column::from_f64(&[], fmt);
            assert!(col.is_empty());
            assert_eq!(col.scan(), 0);
            assert_eq!(col.sum(), 0.0);
            assert_eq!(col.par_sum(4), 0.0);
        }
    }

    #[test]
    fn zone_maps_match_data() {
        let data = sample_data(5000);
        let col = Column::from_f64(&data, Format::alp());
        assert_eq!(col.zone_maps().len(), 5);
        for (i, zm) in col.zone_maps().iter().enumerate() {
            let chunk = &data[i * VECTOR_SIZE..((i + 1) * VECTOR_SIZE).min(data.len())];
            assert_eq!(zm.min, chunk.iter().copied().fold(f64::INFINITY, f64::min));
            assert_eq!(zm.max, chunk.iter().copied().fold(f64::NEG_INFINITY, f64::max));
        }
    }

    #[test]
    fn sum_where_agrees_with_reference_in_every_format() {
        // Sorted-ish data so zone maps actually prune.
        let data: Vec<f64> = (0..300_000).map(|i| (i / 10) as f64 / 100.0).collect();
        let (lo, hi) = (50.0, 80.0);
        let reference: f64 = data.iter().filter(|&&x| (lo..=hi).contains(&x)).sum();
        let ref_matches = data.iter().filter(|&&x| (lo..=hi).contains(&x)).count();
        for fmt in formats() {
            let col = Column::from_f64(&data, fmt);
            let r = col.sum_where(lo, hi);
            assert_eq!(r.matches, ref_matches, "{}", fmt.name());
            assert!((r.sum - reference).abs() <= reference.abs() * 1e-12, "{}", fmt.name());
            assert!(r.vectors_skipped > 0, "{} should prune", fmt.name());
        }
    }

    #[test]
    fn pushdown_prunes_more_at_vector_granularity_than_blocks() {
        let data: Vec<f64> = (0..500_000).map(|i| i as f64).collect();
        // A range covering ~2 vectors.
        let (lo, hi) = (250_000.0, 252_000.0);
        let alp = Column::from_f64(&data, Format::alp()).sum_where(lo, hi);
        let gz = Column::from_f64(&data, Format::by_id("gpzip").unwrap()).sum_where(lo, hi);
        assert_eq!(alp.matches, gz.matches);
        assert!(alp.vectors_scanned <= 4, "alp scanned {}", alp.vectors_scanned);
        // GPZip had to inflate its whole 100-vector block.
        assert!(gz.vectors_scanned >= 100, "gpzip scanned {}", gz.vectors_scanned);
    }

    #[test]
    fn sum_where_ignores_nans_and_handles_empty_range() {
        let mut data = sample_data(10_000);
        data[5] = f64::NAN;
        for fmt in [Format::alp(), Format::Uncompressed] {
            let col = Column::from_f64(&data, fmt);
            let all = col.sum_where(f64::NEG_INFINITY, f64::INFINITY);
            assert_eq!(all.matches, data.len() - 1); // NaN never matches
            let none = col.sum_where(1e18, 2e18);
            assert_eq!(none.matches, 0);
            assert_eq!(none.vectors_scanned, 0);
        }
    }

    #[test]
    fn nan_never_poisons_zone_ranges_and_is_tracked_explicitly() {
        // NaNs scattered through the first vector, right next to in-range
        // live values. A NaN-poisoned min/max would make `overlaps` return
        // false and silently drop the live neighbours.
        let mut data = sample_data(3 * VECTOR_SIZE);
        data[0] = f64::NAN;
        data[100] = f64::NAN;
        data[VECTOR_SIZE - 1] = f64::NAN;
        let live_in_range =
            |lo: f64, hi: f64| data.iter().filter(|x| **x >= lo && **x <= hi).count();
        for fmt in formats() {
            let col = Column::from_f64(&data, fmt);
            let zm = col.zone_maps()[0];
            assert!(zm.min.is_finite() && zm.max.is_finite(), "{}", fmt.name());
            assert!(zm.has_nan, "{}", fmt.name());
            assert!(!col.zone_maps()[1].has_nan, "{}", fmt.name());
            // The NaN-bearing vector must still be scanned for a predicate
            // covering its live values, and every live row found.
            let r = col.sum_where(0.0, 49.99);
            assert_eq!(r.matches, live_in_range(0.0, 49.99), "{}", fmt.name());
            // Rows adjacent to the NaNs are still addressable by value.
            let ids = col.filter_indices(0.01, 0.01);
            assert!(ids.contains(&1), "{}", fmt.name());
        }
    }

    #[test]
    fn all_nan_vectors_have_empty_ranges_that_overlap_nothing() {
        let zm = ZoneMap::of(&[f64::NAN; 16]);
        assert!(zm.has_nan);
        assert_eq!(zm.min, f64::INFINITY);
        assert_eq!(zm.max, f64::NEG_INFINITY);
        assert!(!zm.overlaps(f64::NEG_INFINITY, f64::INFINITY));
        // An all-NaN vector inside a column is pruned, not mis-scanned.
        let mut data = sample_data(2 * VECTOR_SIZE);
        for v in data.iter_mut().take(VECTOR_SIZE) {
            *v = f64::NAN;
        }
        for fmt in [Format::alp(), Format::Uncompressed] {
            let col = Column::from_f64(&data, fmt);
            let r = col.sum_where(f64::NEG_INFINITY, f64::INFINITY);
            assert_eq!(r.matches, VECTOR_SIZE, "{}", fmt.name());
            assert!(r.vectors_skipped >= 1, "{} should prune the NaN vector", fmt.name());
        }
    }

    #[test]
    fn try_decompress_vector_at_matches_the_panicking_twin() {
        let data = sample_data(ROWGROUP_VALUES + 700);
        let mut scratch = Scratch::new();
        for fmt in formats() {
            let col = Column::from_f64(&data, fmt);
            let mut reference = vec![0.0f64; VECTOR_SIZE];
            let mut got = Vec::new();
            let vectors = col.zone_maps().len();
            for v in 0..vectors {
                let n = col.decompress_vector_at(v, &mut reference);
                let m = col.try_decompress_vector_at(v, &mut got, &mut scratch).unwrap();
                assert_eq!(n, m, "{} v={v}", fmt.name());
                for (a, b) in reference[..n].iter().zip(&got) {
                    assert_eq!(a.to_bits(), b.to_bits(), "{} v={v}", fmt.name());
                }
            }
            // Out-of-range is a typed error, not a panic.
            let err = col.try_decompress_vector_at(vectors, &mut got, &mut scratch).unwrap_err();
            assert_eq!(err, VectorAccessError::OutOfRange { vector: vectors, vectors });
        }
    }

    #[test]
    fn short_tail_vectors_are_delivered() {
        let data = sample_data(ROWGROUP_VALUES + 700);
        for fmt in formats() {
            let col = Column::from_f64(&data, fmt);
            assert_eq!(col.scan(), data.len(), "{}", fmt.name());
        }
    }
}
