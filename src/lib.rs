//! Umbrella crate re-exporting the public surface of the ALP reproduction workspace.
//!
//! Most users want [`alp`] directly; the other crates are the substrates and baselines
//! the paper's evaluation requires. See `DESIGN.md` for the full system inventory.

#![forbid(unsafe_code)]

pub mod corruption;

pub use alp;
pub use alp_core;
pub use bitstream;
pub use codecs;
pub use datagen;
pub use fastlanes;
pub use gpzip;
pub use vectorq;
