//! Reusable corrupt-input fault-injection harness.
//!
//! Every decoder in the workspace claims the same contract for untrusted
//! bytes: *return `Err`, never panic, never read out of bounds, never
//! allocate unboundedly*. This module generates the adversarial corpus that
//! the integration suite (`tests/codec_robustness.rs`) runs against each of
//! them — truncations at boundary classes, single and multi bit-flips, and
//! random garbage — plus [`assert_decoder_robust`], the standard driver.
//!
//! Everything is deterministic: cases derive from a caller-provided seed via
//! an inline SplitMix64, so a failure reproduces from its printed label.
//!
//! The I/O-side twin lives here too: seeded [`FaultPlan`] schedules
//! (re-exported from [`alp::io`]) and the [`transient_plans`] family, driven
//! by `tests/fault_injection.rs` and `tests/stream_faults.rs`.

/// The deterministic fault-injection vocabulary, re-exported from
/// [`alp::io`] so integration suites build seeded I/O fault schedules from
/// the same module that hands them the corrupt-input corpus. The base seed
/// comes from `ALP_FAULT_SEED` (see [`fault_seed`]); CI sweeps it as a
/// matrix.
pub use alp::io::{
    fault_seed, Fault, FaultPlan, FaultyRead, FaultyWrite, RetryPolicy, FAULT_SEED_ENV,
};

/// A named family of transient-fault schedules derived from one seed: the
/// cadences are pure functions of the seed, so a failure reproduces from the
/// seed alone. Hard faults (torn writes, poisoned ops) are deliberately not
/// in the family — those need byte offsets only the caller knows.
pub fn transient_plans(seed: u64) -> Vec<(String, FaultPlan)> {
    let mut rng = SplitMix64::new(seed);
    let t = 2 + rng.below(5) as u64;
    let s = 2 + rng.below(6) as u64;
    vec![
        (format!("transient 1-in-{t}"), FaultPlan::clean(seed).with_transients(t)),
        (format!("short 1-in-{s}"), FaultPlan::clean(seed).with_short_ops(s)),
        (
            format!("transient 1-in-{t} + short 1-in-{s}"),
            FaultPlan::clean(seed).with_transients(t).with_short_ops(s),
        ),
    ]
}

/// What a parity-aware fault case must do to a salvaging stream reader.
/// The driver (`tests/self_healing.rs`) asserts each expectation literally;
/// the cases themselves are pure functions of the `ALP_FAULT_SEED` base.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ParityExpectation {
    /// Exactly one frame per parity group is damaged: salvage must repair
    /// every group and decode byte-identically to the pristine stream.
    Repairs,
    /// Two frames inside one parity group are damaged: single-fault XOR
    /// parity cannot reconstruct, so salvage must degrade to an honest loss
    /// report — never silently return wrong values.
    DegradesToLoss,
    /// Only parity frames are damaged: the data path must read completely
    /// clean, with nothing lost and nothing repaired.
    DataClean,
}

/// One parity-aware corruption of a protected `"ALPT"` stream.
pub struct ParityCase {
    /// Reproducing description (`"flip byte N of data frame F (group G)"` …).
    pub label: String,
    /// The corrupted stream bytes.
    pub bytes: Vec<u8>,
    /// The contract the salvage path must uphold on these bytes.
    pub expect: ParityExpectation,
}

/// Frame spans of an `"ALPT"`/`"ALPS"` stream: `(start, end, is_parity)` per
/// `len:u32 | xxh64:u64 | body` frame, stopping at the zero-length
/// terminator or the first span that runs past the buffer. Parity frames are
/// recognised by their `"ALPP"` body magic. Public so suites can aim
/// corruption at a specific frame's body rather than at raw offsets.
pub fn stream_frame_spans(bytes: &[u8]) -> Vec<(usize, usize, bool)> {
    let mut at = 5;
    let mut spans = Vec::new();
    while at + 4 <= bytes.len() {
        let len = u32::from_le_bytes(bytes[at..at + 4].try_into().expect("frame length")) as usize;
        if len == 0 {
            break;
        }
        let end = at + 4 + 8 + len;
        if end > bytes.len() {
            break;
        }
        let is_parity = len >= 4 && &bytes[at + 12..at + 16] == b"ALPP";
        spans.push((at, end, is_parity));
        at = end;
    }
    spans
}

/// The three parity fault families over one parity-protected stream, derived
/// from `seed` alone:
///
/// 1. one seed-picked data frame corrupted in *every* parity group
///    (must repair — each group absorbs one fault);
/// 2. two data frames corrupted inside *one* group (must degrade to a loss
///    report — beyond the single-fault repair budget);
/// 3. every parity frame corrupted, data frames untouched (data must read
///    clean — protection metadata is not payload).
///
/// Byte positions land strictly inside frame *bodies* (past the 12-byte
/// `len | xxh64` prefix) so the corruption models payload rot rather than
/// framing damage; the torn-framing classes live in [`truncations`].
pub fn parity_fault_family(original: &[u8], seed: u64) -> Vec<ParityCase> {
    /// One parity group while bucketing spans: the data-frame spans plus the
    /// trailing parity-frame span, when present.
    type GroupSpans = (Vec<(usize, usize)>, Option<(usize, usize)>);

    let spans = stream_frame_spans(original);
    // Group the data frames by their trailing parity frame.
    let mut groups: Vec<GroupSpans> = Vec::new();
    let mut run: Vec<(usize, usize)> = Vec::new();
    for &(s, e, is_parity) in &spans {
        if is_parity {
            groups.push((std::mem::take(&mut run), Some((s, e))));
        } else {
            run.push((s, e));
        }
    }
    if !run.is_empty() {
        groups.push((run, None));
    }
    let mut rng = SplitMix64::new(seed ^ 0x0F0F_0F0F_0F0F_0F0F);
    let body = |(s, e): (usize, usize), rng: &mut SplitMix64| s + 12 + rng.below(e - s - 12);
    let mut cases = Vec::new();

    // Family 1: one damaged data frame per group, all groups at once.
    let mut bytes = original.to_vec();
    let mut label = String::from("one data frame corrupt per group:");
    for (gi, (data, _)) in groups.iter().enumerate() {
        if data.is_empty() {
            continue;
        }
        let frame = data[rng.below(data.len())];
        let pos = body(frame, &mut rng);
        bytes[pos] ^= 0xFF;
        label.push_str(&format!(" g{gi}@{pos}"));
    }
    cases.push(ParityCase { label, bytes, expect: ParityExpectation::Repairs });

    // Family 2: two damaged frames inside one group. Prefer a group with two
    // data frames; a single-frame tail group degrades the same way when its
    // data *and* parity frames are both hit.
    if let Some((gi, (data, _))) = groups.iter().enumerate().find(|(_, (d, _))| d.len() >= 2) {
        let mut bytes = original.to_vec();
        let a = body(data[0], &mut rng);
        let b = body(data[1], &mut rng);
        bytes[a] ^= 0xFF;
        bytes[b] ^= 0xFF;
        cases.push(ParityCase {
            label: format!("two data frames corrupt in group {gi}: @{a} @{b}"),
            bytes,
            expect: ParityExpectation::DegradesToLoss,
        });
    } else if let Some((gi, (data, Some(parity)))) =
        groups.iter().enumerate().find(|(_, (d, p))| d.len() == 1 && p.is_some())
    {
        let mut bytes = original.to_vec();
        let a = body(data[0], &mut rng);
        let b = body(*parity, &mut rng);
        bytes[a] ^= 0xFF;
        bytes[b] ^= 0xFF;
        cases.push(ParityCase {
            label: format!("data + parity corrupt in group {gi}: @{a} @{b}"),
            bytes,
            expect: ParityExpectation::DegradesToLoss,
        });
    }

    // Family 3: every parity frame damaged, all data frames pristine.
    let mut bytes = original.to_vec();
    let mut label = String::from("all parity frames corrupt:");
    let mut hit = false;
    for (gi, (_, parity)) in groups.iter().enumerate() {
        if let Some(frame) = parity {
            let pos = body(*frame, &mut rng);
            bytes[pos] ^= 0xFF;
            label.push_str(&format!(" g{gi}@{pos}"));
            hit = true;
        }
    }
    if hit {
        cases.push(ParityCase { label, bytes, expect: ParityExpectation::DataClean });
    }
    cases
}

/// Minimal deterministic generator for corpus construction (SplitMix64).
/// Self-contained on purpose: the harness must not drag RNG dependencies
/// into the library build.
pub struct SplitMix64(u64);

impl SplitMix64 {
    /// Seeds the generator.
    pub fn new(seed: u64) -> Self {
        Self(seed)
    }

    /// Next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `0..bound` (`bound > 0`).
    pub fn below(&mut self, bound: usize) -> usize {
        (self.next_u64() % bound as u64) as usize
    }
}

/// One corrupted input: the mutated bytes plus a label that reproduces it.
pub struct Case {
    /// Human-readable description (`"truncate to 17"`, `"flip bit 3 of byte 90"`).
    pub label: String,
    /// The corrupted byte stream.
    pub bytes: Vec<u8>,
}

/// Truncations at the boundary classes that historically break decoders:
/// empty input, cuts inside the fixed header (1/4/8/13 bytes), fractional
/// cuts through the payload, and the off-by-one cut of the last byte.
pub fn truncations(original: &[u8]) -> Vec<Case> {
    let n = original.len();
    let mut cuts = vec![0, 1, 4, 8, 13, n / 4, n / 3, n / 2, 2 * n / 3, 3 * n / 4];
    cuts.push(n.saturating_sub(1));
    cuts.sort_unstable();
    cuts.dedup();
    cuts.retain(|&c| c < n);
    cuts.into_iter()
        .map(|c| Case { label: format!("truncate to {c} of {n}"), bytes: original[..c].to_vec() })
        .collect()
}

/// `count` single-bit flips at seed-derived positions spread over the input.
pub fn single_bit_flips(original: &[u8], seed: u64, count: usize) -> Vec<Case> {
    let mut rng = SplitMix64::new(seed);
    let mut cases = Vec::with_capacity(count);
    if original.is_empty() {
        return cases;
    }
    for _ in 0..count {
        let pos = rng.below(original.len());
        let bit = rng.below(8);
        let mut bytes = original.to_vec();
        bytes[pos] ^= 1 << bit;
        cases.push(Case { label: format!("flip bit {bit} of byte {pos}"), bytes });
    }
    cases
}

/// `count` cases of 2–8 simultaneous bit flips each.
pub fn multi_bit_flips(original: &[u8], seed: u64, count: usize) -> Vec<Case> {
    let mut rng = SplitMix64::new(seed ^ 0xA5A5_A5A5_A5A5_A5A5);
    let mut cases = Vec::with_capacity(count);
    if original.is_empty() {
        return cases;
    }
    for _ in 0..count {
        let flips = 2 + rng.below(7);
        let mut bytes = original.to_vec();
        let mut label = String::from("flip bits at");
        for _ in 0..flips {
            let pos = rng.below(bytes.len());
            let bit = rng.below(8);
            bytes[pos] ^= 1 << bit;
            label.push_str(&format!(" {pos}.{bit}"));
        }
        cases.push(Case { label, bytes });
    }
    cases
}

/// Random garbage buffers of the given sizes — streams that were never valid.
pub fn garbage(seed: u64, sizes: &[usize]) -> Vec<Case> {
    let mut rng = SplitMix64::new(seed ^ 0x5A5A_5A5A_5A5A_5A5A);
    sizes
        .iter()
        .map(|&len| Case {
            label: format!("garbage of {len} bytes"),
            bytes: (0..len).map(|_| rng.next_u64() as u8).collect(),
        })
        .collect()
}

/// The full corpus for one original stream: all of the above.
pub fn corpus(original: &[u8], seed: u64) -> Vec<Case> {
    let mut cases = truncations(original);
    cases.extend(single_bit_flips(original, seed, 64));
    cases.extend(multi_bit_flips(original, seed, 32));
    cases.extend(garbage(seed, &[0, 1, 7, 64, 1024, original.len().clamp(1, 1 << 16)]));
    cases
}

/// Standard robustness driver. `decode` is run over the whole corpus and must
/// *return* on every case (a panic fails the test by itself); additionally:
///
/// * the pristine input must still decode (`Ok`);
/// * aggressive truncations — empty input and cuts at 1/3 and 1/2 of the
///   stream, which provably destroy payload — must be *detected* (`Err`).
///
/// Bit-flips are deliberately not required to `Err` here: codecs without
/// checksums (every XOR baseline) cannot detect a payload flip that decodes
/// to different-but-well-formed values. Formats with integrity frames get
/// the stronger every-flip-errs guarantee in their own tests.
pub fn assert_decoder_robust<T, E: core::fmt::Debug>(
    original: &[u8],
    seed: u64,
    mut decode: impl FnMut(&[u8]) -> Result<T, E>,
) {
    assert!(decode(original).is_ok(), "decoder rejects pristine input");
    for case in corpus(original, seed) {
        let _ = decode(&case.bytes);
    }
    for cut in [0, original.len() / 3, original.len() / 2] {
        assert!(
            decode(&original[..cut]).is_err(),
            "truncation to {cut} of {} bytes went undetected",
            original.len()
        );
    }
}

/// Runs [`assert_decoder_robust`] over every serializable codec in the
/// workspace [`alp_core::Registry`], twice per codec: once on the raw
/// compressed bytes, once wrapped in the checksummed container envelope.
///
/// New codecs are covered automatically the moment they are registered —
/// there is no per-codec list to keep in sync.
pub fn assert_registry_robust(data: &[f64], seed: u64) {
    use alp_core::{Registry, Scratch};
    for codec in Registry::all().iter().filter(|c| !c.caps().ratio_only) {
        let mut bytes = Vec::new();
        codec
            .try_compress_into(data, &mut bytes, &mut Scratch::new())
            .unwrap_or_else(|e| panic!("{}: compress failed: {e}", codec.id()));
        let codec_seed = seed ^ alp::hash::xxh64(codec.id().as_bytes(), 0);

        let mut scratch = Scratch::new();
        let mut out = Vec::new();
        assert_decoder_robust(&bytes, codec_seed, |b| {
            codec.try_decompress_into(b, data.len(), &mut out, &mut scratch)
        });

        let frame = alp_core::write_container(*codec, data, &mut scratch)
            .unwrap_or_else(|e| panic!("{}: container write failed: {e}", codec.id()));
        assert_decoder_robust(&frame, codec_seed.rotate_left(17), |b| {
            alp_core::try_read_container_into(b, &mut out, &mut scratch)
        });
    }
}

/// The `f32` twin of [`assert_registry_robust`]: every codec whose
/// capability descriptor advertises `f32` support runs the corpus on its
/// single-precision path.
pub fn assert_registry_robust_f32(data: &[f32], seed: u64) {
    use alp_core::{Registry, Scratch};
    for codec in Registry::all().iter().filter(|c| c.caps().f32) {
        let mut bytes = Vec::new();
        codec
            .try_compress_f32_into(data, &mut bytes, &mut Scratch::new())
            .unwrap_or_else(|e| panic!("{}: f32 compress failed: {e}", codec.id()));
        let codec_seed = seed ^ alp::hash::xxh64(codec.id().as_bytes(), 1);

        let mut scratch = Scratch::new();
        let mut out = Vec::new();
        assert_decoder_robust(&bytes, codec_seed, |b| {
            codec.try_decompress_f32_into(b, data.len(), &mut out, &mut scratch)
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_is_deterministic() {
        let original: Vec<u8> = (0..500u32).map(|i| (i % 251) as u8).collect();
        let a = corpus(&original, 7);
        let b = corpus(&original, 7);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.label, y.label);
            assert_eq!(x.bytes, y.bytes);
        }
    }

    #[test]
    fn flips_change_exactly_one_bit() {
        let original = vec![0u8; 64];
        for case in single_bit_flips(&original, 3, 16) {
            let flipped: u32 = case.bytes.iter().map(|b| b.count_ones()).sum();
            assert_eq!(flipped, 1, "{}", case.label);
        }
    }

    #[test]
    fn truncations_cover_empty_and_off_by_one() {
        let original = vec![9u8; 100];
        let cuts: Vec<usize> = truncations(&original).iter().map(|c| c.bytes.len()).collect();
        assert!(cuts.contains(&0));
        assert!(cuts.contains(&99));
        assert!(cuts.iter().all(|&c| c < 100));
    }
}
