//! Streaming compression: write a column to a file row-group by row-group
//! (bounded memory), then read it back incrementally — the I/O-friendly
//! surface a big-data-format writer would use.
//!
//! ```sh
//! cargo run --release --example streaming
//! ```

use std::fs::File;
use std::io::{BufReader, BufWriter};

use alp::stream::{ColumnReader, ColumnWriter};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let path = std::env::temp_dir().join("alp_streaming_demo.alps");

    // Feed 2M values in small chunks, as a sensor pipeline would: the writer
    // holds at most one row-group (100 * 1024 values) in memory regardless of
    // the column's total size.
    let total = 2_000_000usize;
    let source = datagen::generate("Stocks-DE", total, 7);
    {
        let mut writer = ColumnWriter::<f64, _>::new(BufWriter::new(File::create(&path)?));
        for chunk in source.chunks(10_000) {
            writer.push(chunk)?;
        }
        let summary = writer.finish()?;
        println!(
            "wrote {} values in {} row-groups, {} compressed bytes ({:.2} bits/value)",
            summary.values,
            summary.rowgroups,
            summary.compressed_bytes,
            summary.compressed_bytes as f64 * 8.0 / summary.values as f64
        );
    }

    // Read back incrementally; abort-early readers only pay for what they read.
    let mut reader = ColumnReader::<f64, _>::new(BufReader::new(File::open(&path)?))?;
    let mut count = 0usize;
    let mut sum = 0.0f64;
    let mut rowgroups = 0usize;
    while let Some(values) = reader.next_rowgroup()? {
        count += values.len();
        sum += values.iter().sum::<f64>();
        rowgroups += 1;
    }
    println!(
        "read back {count} values from {rowgroups} row-groups, mean = {:.4}",
        sum / count as f64
    );
    assert_eq!(count, total);

    std::fs::remove_file(&path).ok();
    Ok(())
}
