//! Streaming compression: write a column to a file row-group by row-group
//! (bounded memory), then read it back incrementally — the I/O-friendly
//! surface a big-data-format writer would use.
//!
//! ```sh
//! cargo run --release --example streaming
//! ```

use std::fs::File;
use std::io::{BufReader, BufWriter};
use std::time::Instant;

use alp::pipeline::{PipelineConfig, PipelinedColumnWriter};
use alp::stream::{ColumnReader, ColumnWriter};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let path = std::env::temp_dir().join("alp_streaming_demo.alps");

    // Feed 2M values in small chunks, as a sensor pipeline would: the writer
    // holds at most one row-group (100 * 1024 values) in memory regardless of
    // the column's total size.
    let total = 2_000_000usize;
    let source = datagen::generate("Stocks-DE", total, 7);
    {
        let mut writer = ColumnWriter::<f64, _>::new(BufWriter::new(File::create(&path)?));
        for chunk in source.chunks(10_000) {
            writer.push(chunk)?;
        }
        let summary = writer.finish()?;
        println!(
            "wrote {} values in {} row-groups, {} bytes on disk ({:.2} bits/value)",
            summary.values,
            summary.rowgroups,
            summary.total_bytes,
            summary.payload_bytes as f64 * 8.0 / summary.values as f64
        );
    }

    // Read back incrementally; abort-early readers only pay for what they read.
    let mut reader = ColumnReader::<f64, _>::new(BufReader::new(File::open(&path)?))?;
    let mut count = 0usize;
    let mut sum = 0.0f64;
    let mut rowgroups = 0usize;
    while let Some(values) = reader.next_rowgroup()? {
        count += values.len();
        sum += values.iter().sum::<f64>();
        rowgroups += 1;
    }
    println!(
        "read back {count} values from {rowgroups} row-groups, mean = {:.4}",
        sum / count as f64
    );
    assert_eq!(count, total);

    // The pipelined mode: identical bytes, with compression overlapped onto
    // a worker pool while the caller thread keeps filling (threads/depth
    // resolve from ALP_THREADS / ALP_PIPELINE_DEPTH when not set here).
    let piped_path = std::env::temp_dir().join("alp_streaming_demo_piped.alps");
    let t0 = Instant::now();
    {
        let sink = BufWriter::new(File::create(&piped_path)?);
        let mut writer = PipelinedColumnWriter::<f64, _>::new(sink, PipelineConfig::default());
        for chunk in source.chunks(10_000) {
            writer.push(chunk)?;
        }
        let summary = writer.finish()?;
        println!(
            "pipelined: {} values in {} row-groups, {} bytes ({:.0} ms)",
            summary.values,
            summary.rowgroups,
            summary.total_bytes,
            t0.elapsed().as_secs_f64() * 1e3
        );
    }
    assert_eq!(
        std::fs::read(&path)?,
        std::fs::read(&piped_path)?,
        "pipelined stream must be byte-identical to the serial one"
    );

    std::fs::remove_file(&path).ok();
    std::fs::remove_file(&piped_path).ok();
    Ok(())
}
