//! Quickstart: compress a column of doubles with ALP, inspect the result,
//! serialize it, and get the data back bit-exactly.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use alp::{format, Compressor};

fn main() {
    // A million "prices": decimals with 2 digits — typical database doubles.
    let prices: Vec<f64> =
        (0..1_000_000).map(|i| (1999 + (i * 37) % 100_000) as f64 / 100.0).collect();

    // Compress. The compressor samples each row-group to pick the scheme and
    // the per-vector (exponent, factor) parameters automatically.
    let compressed = Compressor::new().compress(&prices);

    println!("values            : {}", compressed.len);
    println!("bits per value    : {:.2} (uncompressed: 64)", compressed.bits_per_value());
    println!("compression ratio : {:.1}x", 64.0 / compressed.bits_per_value());
    println!(
        "row-groups        : {} ALP, {} ALP_rd",
        compressed.stats.rowgroups_alp, compressed.stats.rowgroups_rd
    );

    // Serialize to bytes (e.g. for a file or a column chunk in a data format).
    let bytes = format::to_bytes(&compressed);
    println!("serialized bytes  : {}", bytes.len());

    // Deserialize and decompress — bit-exact, always.
    let restored = format::from_bytes::<f64>(&bytes).expect("valid column");
    let output = restored.decompress();
    assert_eq!(prices.len(), output.len());
    assert!(prices.iter().zip(&output).all(|(a, b)| a.to_bits() == b.to_bits()));
    println!("roundtrip         : bit-exact ✓");

    // Vector-level random access: decompress only vector 500 of row-group 2.
    let mut buffer = vec![0.0f64; alp::VECTOR_SIZE];
    let n = restored.decompress_vector(2, 50, &mut buffer);
    println!("random access     : vector (rg=2, v=50) -> {n} values, first = {}", buffer[0]);
}
