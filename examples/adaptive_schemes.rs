//! Shows ALP's adaptivity: the same compressor handles decimal data (time
//! series, prices, counts) with the decimal scheme and switches row-groups of
//! high-precision "real doubles" (coordinates in radians, ML-style values) to
//! ALP_rd — and tells you what it did.
//!
//! ```sh
//! cargo run --release --example adaptive_schemes
//! ```

use alp::{Compressor, Scheme};

fn describe(name: &str, data: &[f64]) {
    let compressed = Compressor::new().compress(data);
    let schemes: Vec<&str> = compressed
        .rowgroups
        .iter()
        .map(|rg| match rg.scheme() {
            Scheme::Alp => "ALP",
            Scheme::AlpRd => "ALP_rd",
        })
        .collect();
    let back = compressed.decompress();
    assert!(data.iter().zip(&back).all(|(a, b)| a.to_bits() == b.to_bits()));
    println!(
        "{name:<28} {:>6.2} bits/value  row-groups: [{}]",
        compressed.bits_per_value(),
        schemes.join(", ")
    );
}

fn main() {
    println!("dataset                      bits/value  chosen scheme per row-group\n");

    // Decimal data of varying flavors: stays on the decimal scheme.
    describe("Stocks-USA (2 decimals)", &datagen::generate("Stocks-USA", 300_000, 7));
    describe("Air-Pressure (5 decimals)", &datagen::generate("Air-Pressure", 300_000, 7));
    describe("CMS/9 (integer counts)", &datagen::generate("CMS/9", 300_000, 7));
    describe("Gov/26 (99.5% zeros)", &datagen::generate("Gov/26", 300_000, 7));

    // Real doubles: the sampler detects hopeless decimal encoding and flips
    // the row-group to ALP_rd (front-bits + dictionary).
    describe("POI-lat (radians)", &datagen::generate("POI-lat", 300_000, 7));
    describe("POI-lon (radians)", &datagen::generate("POI-lon", 300_000, 7));

    // A column that changes character halfway: each row-group decides
    // independently.
    let mut mixed = datagen::generate("City-Temp", 102_400, 7);
    mixed.extend(datagen::generate("POI-lat", 102_400, 7));
    describe("City-Temp ++ POI-lat", &mixed);

    println!("\nEvery result above was verified bit-exact.");
}
