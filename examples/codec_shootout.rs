//! Compares every compression scheme in the repository on one dataset:
//! ratio and wall-clock speed, a single-dataset slice of the paper's
//! evaluation.
//!
//! ```sh
//! cargo run --release --example codec_shootout -- Stocks-USA
//! ```

use std::time::Instant;

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "Stocks-USA".to_string());
    let data = datagen::generate(&name, 500_000, 11);
    let mb = data.len() as f64 * 8.0 / 1e6;
    println!("dataset {name}: {} values ({mb:.0} MB)\n", data.len());
    println!("{:<10} {:>11} {:>14} {:>14}", "scheme", "bits/value", "comp MB/s", "decomp MB/s");

    // ALP.
    let t0 = Instant::now();
    let compressed = alp::Compressor::new().compress(&data);
    let c_s = t0.elapsed().as_secs_f64();
    let t0 = Instant::now();
    let back = compressed.decompress();
    let d_s = t0.elapsed().as_secs_f64();
    assert!(data.iter().zip(&back).all(|(a, b)| a.to_bits() == b.to_bits()));
    println!(
        "{:<10} {:>11.2} {:>14.0} {:>14.0}",
        "ALP",
        compressed.bits_per_value(),
        mb / c_s,
        mb / d_s
    );

    // Baseline codecs.
    for codec in codecs::Codec::ALL {
        let t0 = Instant::now();
        let bytes = codec.compress_f64(&data);
        let c_s = t0.elapsed().as_secs_f64();
        let t0 = Instant::now();
        let back = codec.decompress_f64(&bytes, data.len());
        let d_s = t0.elapsed().as_secs_f64();
        assert!(data.iter().zip(&back).all(|(a, b)| a.to_bits() == b.to_bits()));
        println!(
            "{:<10} {:>11.2} {:>14.0} {:>14.0}",
            codec.name(),
            bytes.len() as f64 * 8.0 / data.len() as f64,
            mb / c_s,
            mb / d_s
        );
    }

    // The Zstd stand-in.
    let raw: Vec<u8> = data.iter().flat_map(|v| v.to_le_bytes()).collect();
    let t0 = Instant::now();
    let z = gpzip::compress(&raw);
    let c_s = t0.elapsed().as_secs_f64();
    let t0 = Instant::now();
    let back = gpzip::decompress(&z);
    let d_s = t0.elapsed().as_secs_f64();
    assert_eq!(back, raw);
    println!(
        "{:<10} {:>11.2} {:>14.0} {:>14.0}",
        "Zstd*",
        z.len() as f64 * 8.0 / data.len() as f64,
        mb / c_s,
        mb / d_s
    );
    println!("\nall schemes verified bit-exact lossless on this dataset");
}
