//! End-to-end querying over compressed storage with the vectorized engine:
//! SCAN and SUM over an ALP column vs uncompressed vs a block-based
//! general-purpose compressor, demonstrating why vector-granular compression
//! enables skipping (predicate push-down) and block-based does not.
//!
//! ```sh
//! cargo run --release --example query_pushdown
//! ```

use std::time::Instant;

use vectorq::{Column, Format};

fn time<T>(label: &str, f: impl FnOnce() -> T) -> T {
    let t0 = Instant::now();
    let r = f();
    println!("  {label:<24} {:>9.1} ms", t0.elapsed().as_secs_f64() * 1e3);
    r
}

fn main() {
    let data = {
        let base = datagen::generate("City-Temp", 1_048_576, 3);
        let mut d = Vec::with_capacity(8 * base.len());
        for _ in 0..8 {
            d.extend_from_slice(&base);
        }
        d
    };
    println!("column: {} doubles ({} MB uncompressed)\n", data.len(), data.len() * 8 / 1_000_000);

    for fmt in [Format::Uncompressed, Format::alp(), Format::by_id("gpzip").unwrap()] {
        println!("{}:", fmt.name());
        let col = time("compress (COMP)", || Column::from_f64(&data, fmt));
        println!(
            "  {:<24} {:>9.2} bits/value",
            "footprint",
            col.compressed_bytes() as f64 * 8.0 / data.len() as f64
        );
        let tuples = time("full scan (SCAN)", || col.scan());
        assert_eq!(tuples, data.len());
        let total = time("aggregate (SUM)", || col.sum());
        println!("  {:<24} {total:>13.2}\n", "sum result");
    }

    // The push-down story: touching ONE vector.
    println!("touching a single 1024-value vector in the middle of the column:");
    let alp_col = alp::Compressor::new().compress(&data);
    let mut buf = vec![0.0f64; alp::VECTOR_SIZE];
    let t0 = Instant::now();
    let n = alp_col.decompress_vector(40, 50, &mut buf);
    let alp_us = t0.elapsed().as_secs_f64() * 1e6;
    println!("  ALP   : decompress exactly {n} values          -> {alp_us:>8.1} us");

    let block: Vec<u8> =
        data[..vectorq::ROWGROUP_VALUES].iter().flat_map(|v| v.to_le_bytes()).collect();
    let zblock = gpzip::compress(&block);
    let t0 = Instant::now();
    let raw = gpzip::decompress(&zblock);
    let z_us = t0.elapsed().as_secs_f64() * 1e6;
    println!(
        "  GPZip : must inflate the whole {}-value block -> {z_us:>8.1} us ({:.0}x more data touched)",
        raw.len() / 8,
        (raw.len() / 8) as f64 / n as f64
    );

    // Cross-column push-down with the Table API: filter on a sorted time
    // column, aggregate a price column — only the matching vectors of the
    // price column are ever decompressed.
    println!("\ncross-column predicate push-down (Table API):");
    let n_rows = 2_000_000usize;
    let time: Vec<f64> = (0..n_rows).map(|i| i as f64).collect();
    let price = datagen::generate("Stocks-USA", n_rows, 3);
    let table = vectorq::table::Table::from_columns(vec![
        ("time", time, vectorq::Format::alp()),
        ("price", price, vectorq::Format::alp()),
    ])
    .unwrap();
    let t0 = Instant::now();
    let r = table
        .aggregate_where("price", vectorq::table::Aggregate::Avg, "time", 1_000_000.0, 1_004_095.0)
        .unwrap();
    println!(
        "  avg(price) where time in [1e6, 1e6+4095]: {:.4} ({} rows, {} of {} price vectors touched, {:.1} us)",
        r.value,
        r.matches,
        r.vectors_touched,
        table.rows().div_ceil(alp::VECTOR_SIZE),
        t0.elapsed().as_secs_f64() * 1e6
    );
}
