//! A small CLI: compress a raw little-endian `f64` binary file into an `.alp`
//! column file, or decompress one back.
//!
//! ```sh
//! # generate a demo input, compress, decompress, verify
//! cargo run --release --example compress_file -- demo
//!
//! # compress your own file of little-endian f64s
//! cargo run --release --example compress_file -- compress input.f64 output.alp
//! cargo run --release --example compress_file -- decompress output.alp restored.f64
//! ```

use std::fs;
use std::process::ExitCode;

use alp::{format, Compressor};

fn read_f64(path: &str) -> Vec<f64> {
    let bytes = fs::read(path).unwrap_or_else(|e| panic!("read {path}: {e}"));
    assert!(bytes.len().is_multiple_of(8), "{path} is not a whole number of f64s");
    bytes.chunks_exact(8).map(|c| f64::from_le_bytes(c.try_into().unwrap())).collect()
}

fn write_f64(path: &str, data: &[f64]) {
    let bytes: Vec<u8> = data.iter().flat_map(|v| v.to_le_bytes()).collect();
    fs::write(path, bytes).unwrap_or_else(|e| panic!("write {path}: {e}"));
}

fn compress(input: &str, output: &str) {
    let data = read_f64(input);
    let compressed = Compressor::new().compress(&data);
    let bytes = format::to_bytes(&compressed);
    fs::write(output, &bytes).unwrap_or_else(|e| panic!("write {output}: {e}"));
    println!(
        "{input}: {} values, {:.2} bits/value -> {output} ({} bytes, {:.1}x)",
        data.len(),
        compressed.bits_per_value(),
        bytes.len(),
        (data.len() * 8) as f64 / bytes.len() as f64
    );
}

fn decompress(input: &str, output: &str) {
    let bytes = fs::read(input).unwrap_or_else(|e| panic!("read {input}: {e}"));
    let compressed = format::from_bytes::<f64>(&bytes).expect("valid .alp file");
    let data = compressed.decompress();
    write_f64(output, &data);
    println!("{input} -> {output}: {} values", data.len());
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    match args.get(1).map(String::as_str) {
        Some("compress") if args.len() == 4 => {
            compress(&args[2], &args[3]);
            ExitCode::SUCCESS
        }
        Some("decompress") if args.len() == 4 => {
            decompress(&args[2], &args[3]);
            ExitCode::SUCCESS
        }
        Some("demo") => {
            let dir = std::env::temp_dir().join("alp_demo");
            fs::create_dir_all(&dir).unwrap();
            let input = dir.join("demo.f64");
            let packed = dir.join("demo.alp");
            let restored = dir.join("restored.f64");
            let data = datagen::generate("Stocks-USA", 500_000, 1);
            write_f64(input.to_str().unwrap(), &data);
            compress(input.to_str().unwrap(), packed.to_str().unwrap());
            decompress(packed.to_str().unwrap(), restored.to_str().unwrap());
            let back = read_f64(restored.to_str().unwrap());
            assert!(data.iter().zip(&back).all(|(a, b)| a.to_bits() == b.to_bits()));
            println!("verified bit-exact ✓ (files under {})", dir.display());
            ExitCode::SUCCESS
        }
        _ => {
            eprintln!("usage: compress_file demo | compress <in.f64> <out.alp> | decompress <in.alp> <out.f64>");
            ExitCode::FAILURE
        }
    }
}
