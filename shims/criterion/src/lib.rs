//! Offline stand-in for the `criterion` crate.
//!
//! The build environment cannot reach crates.io, so the workspace vendors the
//! subset of Criterion its benches use: [`Criterion::benchmark_group`],
//! [`BenchmarkGroup::bench_function`] with [`Bencher::iter`] /
//! [`Bencher::iter_batched`], [`Throughput::Elements`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros. Measurement is a plain
//! best-of-samples wall-clock loop — adequate for the relative comparisons the
//! benches print, with none of upstream's statistics, plotting, or baselines.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// How the measured routine's work scales, for per-element reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// The routine processes this many logical elements per iteration.
    Elements(u64),
    /// The routine processes this many bytes per iteration.
    Bytes(u64),
}

/// Batch sizing hint for [`Bencher::iter_batched`]; the shim runs one setup
/// per measured call regardless, so the variants only mirror upstream's API.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
}

/// Top-level benchmark driver.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    #[allow(dead_code)]
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            sample_size: 10,
            measurement_time: Duration::from_millis(500),
            warm_up_time: Duration::from_millis(100),
        }
    }
}

impl Criterion {
    /// Number of timing samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Target total measurement time per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Target warm-up time per benchmark.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.into(), throughput: None, sample_size: None }
    }
}

/// A named set of benchmarks sharing a throughput annotation.
pub struct BenchmarkGroup<'a> {
    criterion: &'a Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-iteration throughput used in reporting.
    pub fn throughput(&mut self, t: Throughput) {
        self.throughput = Some(t);
    }

    /// Overrides the driver's sample count for this group alone.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(1));
        self
    }

    /// Measures `f` and prints one result line.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut bencher = Bencher {
            sample_size: self.sample_size.unwrap_or(self.criterion.sample_size),
            measurement_time: self.criterion.measurement_time,
            best: Duration::MAX,
        };
        f(&mut bencher);
        let per_iter = bencher.best;
        let rate = match self.throughput {
            Some(Throughput::Elements(n)) | Some(Throughput::Bytes(n)) if n > 0 => {
                let secs = per_iter.as_secs_f64();
                if secs > 0.0 {
                    format!("  ({:.0} /s)", n as f64 / secs)
                } else {
                    String::new()
                }
            }
            _ => String::new(),
        };
        println!("{}/{:<24} {:>12.1?}{}", self.name, id, per_iter, rate);
        self
    }

    /// Ends the group (upstream flushes reports here; the shim prints as it
    /// goes, so this is a no-op kept for API compatibility).
    pub fn finish(&mut self) {}
}

/// Timer handed to each benchmark closure.
pub struct Bencher {
    sample_size: usize,
    measurement_time: Duration,
    best: Duration,
}

impl Bencher {
    /// Times `routine`, keeping the best per-iteration sample.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Calibrate: how many iterations fit in one sample's time slice.
        let t0 = Instant::now();
        std::hint::black_box(routine());
        let once = t0.elapsed().max(Duration::from_nanos(1));
        let slice = self.measurement_time / self.sample_size as u32;
        let iters = (slice.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as usize;

        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(routine());
            }
            let per = start.elapsed() / iters as u32;
            if per < self.best {
                self.best = per;
            }
        }
    }

    /// Times `routine` with a fresh `setup` product each call; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S: FnMut() -> I, R: FnMut(I) -> O>(
        &mut self,
        mut setup: S,
        mut routine: R,
        _size: BatchSize,
    ) {
        for _ in 0..self.sample_size.max(1) {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            let per = start.elapsed();
            if per < self.best {
                self.best = per;
            }
        }
    }
}

/// Bundles benchmark functions under a name, mirroring upstream's macro.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Entry point running every group passed to it.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn work(c: &mut Criterion) {
        let mut g = c.benchmark_group("shim");
        g.throughput(Throughput::Elements(64));
        g.bench_function("sum", |b| b.iter(|| (0u64..64).sum::<u64>()));
        g.bench_function("batched", |b| {
            b.iter_batched(
                || vec![1u8; 64],
                |v| v.iter().map(|&x| x as u64).sum::<u64>(),
                BatchSize::SmallInput,
            )
        });
        g.finish();
    }

    #[test]
    fn group_runs_and_measures() {
        let mut c = Criterion::default()
            .sample_size(3)
            .measurement_time(Duration::from_millis(30))
            .warm_up_time(Duration::from_millis(5));
        work(&mut c);
    }

    criterion_group! {
        name = benches;
        config = Criterion::default().sample_size(2).measurement_time(Duration::from_millis(10));
        targets = work
    }

    #[test]
    fn macro_group_compiles_and_runs() {
        benches();
    }
}
