//! Offline stand-in for the `proptest` crate.
//!
//! The build environment cannot reach crates.io, so the workspace vendors the
//! subset of proptest its tests rely on: the [`Strategy`] trait with
//! `prop_map`, `any::<T>()`, range and tuple strategies,
//! [`collection::vec`], weighted [`prop_oneof!`], and the [`proptest!`] test
//! macro with `ProptestConfig::with_cases`. Cases are generated from a
//! deterministic per-test RNG (seeded from the test name), so failures
//! reproduce across runs. There is **no shrinking**: a failing case reports
//! its inputs via the panic message only.

#![forbid(unsafe_code)]

use rand::rngs::SmallRng;
use rand::{Rng as _, RngCore, SeedableRng};

pub mod test_runner {
    //! Deterministic case generation.

    use super::*;

    /// RNG handed to strategies; deterministic per test name and case index.
    pub struct TestRng(pub(crate) SmallRng);

    impl TestRng {
        /// Seeds from an arbitrary label (the test's name).
        pub fn deterministic(label: &str) -> Self {
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            for b in label.bytes() {
                h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01B3);
            }
            Self(SmallRng::seed_from_u64(h))
        }
    }

    impl RngCore for TestRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }
}

use test_runner::TestRng;

/// Per-block execution configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases each test runs.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

impl ProptestConfig {
    /// Config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

/// A generator of values of type `Value`.
pub trait Strategy {
    /// The type this strategy produces.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy (used by [`prop_oneof!`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A heap-allocated, type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Types with a canonical "arbitrary value" strategy.
pub trait Arbitrary: Sized {
    /// Draws a uniformly distributed value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        f64::from_bits(rng.next_u64())
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        f32::from_bits(rng.next_u64() as u32)
    }
}

/// Strategy for any value of `T` (uniform over the type's bit patterns).
pub struct Any<T>(core::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The `any::<T>()` entry point.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(core::marker::PhantomData)
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A 0)
    (A 0, B 1)
    (A 0, B 1, C 2)
    (A 0, B 1, C 2, D 3)
}

pub mod collection {
    //! Collection strategies.

    use super::*;

    /// Size bounds for generated collections.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // inclusive
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self { lo: r.start, hi: r.end - 1 }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            Self { lo: *r.start(), hi: *r.end() }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi: n }
        }
    }

    /// Strategy producing `Vec`s of `element` values with a length in `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Builds a [`VecStrategy`].
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.lo..=self.size.hi);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Weighted union of same-valued strategies (built by [`prop_oneof!`]).
pub struct Union<T> {
    choices: Vec<(u32, BoxedStrategy<T>)>,
    total: u32,
}

impl<T> Union<T> {
    /// Builds a union; weights must be positive.
    pub fn new_weighted(choices: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        let total = choices.iter().map(|(w, _)| *w).sum();
        assert!(total > 0, "prop_oneof! needs positive total weight");
        Self { choices, total }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.gen_range(0..self.total);
        for (w, s) in &self.choices {
            if pick < *w {
                return s.generate(rng);
            }
            pick -= w;
        }
        unreachable!("weights sum to total")
    }
}

/// Weighted choice between strategies: `prop_oneof![3 => a, 1 => b]`.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strategy:expr),+ $(,)?) => {
        $crate::Union::new_weighted(vec![
            $(($weight, $crate::Strategy::boxed($strategy))),+
        ])
    };
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new_weighted(vec![
            $((1u32, $crate::Strategy::boxed($strategy))),+
        ])
    };
}

/// Assertion that reports the failing case (no shrinking in this shim).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Equality assertion variant of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Inequality assertion variant of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl $cfg; $($rest)*);
    };
    (@impl $cfg:expr; ) => {};
    (@impl $cfg:expr;
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),* $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::test_runner::TestRng::deterministic(concat!(
                module_path!(), "::", stringify!($name)
            ));
            for case in 0..config.cases {
                $(let $arg = $crate::Strategy::generate(&($strategy), &mut rng);)*
                // Render the case up front: the body may consume the args.
                let rendered = {
                    let mut s = String::new();
                    $(s.push_str(&format!("  {} = {:?}\n", stringify!($arg), $arg));)*
                    s
                };
                let run = || -> () { $body };
                // ANALYZER-ALLOW(contained-unwind): the test runner catches a
                // case's panic to report the failing inputs, then re-raises.
                if let Err(e) = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(run)) {
                    eprintln!(
                        "proptest case {case} of {} failed:\n{rendered}",
                        stringify!($name),
                    );
                    ::std::panic::resume_unwind(e);
                }
            }
        }
        $crate::proptest!(@impl $cfg; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@impl $crate::ProptestConfig::default(); $($rest)*);
    };
}

pub mod prelude {
    //! The glob-import surface: `use proptest::prelude::*;`.
    pub use crate::collection::vec as prop_vec;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Arbitrary,
        BoxedStrategy, ProptestConfig, Strategy,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn strategies_are_deterministic_per_label() {
        let mut a = test_runner::TestRng::deterministic("x");
        let mut b = test_runner::TestRng::deterministic("x");
        let s = collection::vec(any::<u64>(), 3..10);
        assert_eq!(s.generate(&mut a), s.generate(&mut b));
    }

    #[test]
    fn vec_lengths_respect_bounds() {
        let mut rng = test_runner::TestRng::deterministic("lens");
        let s = collection::vec(any::<u8>(), 2..5);
        for _ in 0..200 {
            let v = s.generate(&mut rng);
            assert!((2..5).contains(&v.len()), "{}", v.len());
        }
        let exact = collection::vec(any::<u8>(), 7..=7);
        assert_eq!(exact.generate(&mut rng).len(), 7);
    }

    #[test]
    fn oneof_respects_weights_roughly() {
        let mut rng = test_runner::TestRng::deterministic("weights");
        let s = prop_oneof![9 => 0u32..1, 1 => 1u32..2];
        let ones = (0..10_000).filter(|_| s.generate(&mut rng) == 1).count();
        assert!((500..2000).contains(&ones), "{ones}");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_generates_and_runs(v in prop_vec(any::<u8>(), 0..50), x in 0u32..10) {
            assert!(v.len() < 50);
            assert!(x < 10);
        }
    }
}
