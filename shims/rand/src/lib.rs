//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! the narrow slice of `rand` it actually uses: [`rngs::SmallRng`] (the same
//! xoshiro256++ generator the real `SmallRng` uses on 64-bit targets, seeded
//! through SplitMix64 exactly like `SeedableRng::seed_from_u64`), and the
//! [`Rng`] methods `gen`, `gen_bool`, and `gen_range` over integer and float
//! ranges. Distributions are uniform; sampling details may differ from
//! upstream `rand` in low-order bits, which the statistical generators in
//! `datagen` tolerate by construction.

#![forbid(unsafe_code)]

use core::ops::{Range, RangeInclusive};

/// Low-level entropy source: everything derives from `next_u64`.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of seedable generators.
pub trait SeedableRng: Sized {
    /// Derives a full seed from a single `u64` (SplitMix64 expansion, as in
    /// upstream `rand`).
    fn seed_from_u64(state: u64) -> Self;
}

/// Value types samplable by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one uniformly distributed value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range. Panics on empty ranges.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128 * span) >> 64;
                (self.start as i128 + offset as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128 * span) >> 64;
                (lo as i128 + offset as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range");
        let u: f64 = Standard::sample(rng);
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "empty range");
        let u: f64 = Standard::sample(rng);
        lo + u * (hi - lo)
    }
}

/// High-level sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform value of type `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Bernoulli draw with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        debug_assert!((0.0..=1.0).contains(&p));
        let u: f64 = Standard::sample(self);
        u < p
    }

    /// Uniform value from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }
}

impl<R: RngCore> Rng for R {}

/// SplitMix64 step — seed expansion (identical to upstream `rand`'s
/// `seed_from_u64`).
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Named generators.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// xoshiro256++ — the algorithm behind `rand`'s 64-bit `SmallRng`.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            Self { s }
        }
    }

    impl RngCore for SmallRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::*;

    #[test]
    fn deterministic_given_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(42);
        for _ in 0..10_000 {
            let v: i64 = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&v));
            let u: usize = rng.gen_range(0..7usize);
            assert!(u < 7);
            let f: f64 = rng.gen_range(1.0f64..2.0);
            assert!((1.0..2.0).contains(&f));
            let p: f64 = rng.gen();
            assert!((0.0..1.0).contains(&p));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = SmallRng::seed_from_u64(3);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((20_000..30_000).contains(&hits), "{hits}");
    }

    #[test]
    fn inclusive_range_reaches_both_ends() {
        let mut rng = SmallRng::seed_from_u64(9);
        let mut seen = [false; 3];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..=2)] = true;
        }
        assert_eq!(seen, [true; 3]);
    }
}
